// Package topo represents multisource routing topologies: rectilinear
// Steiner trees spanning a terminal set, annotated with prescribed
// degree-two repeater insertion points (§II of Lillis & Cheng, TCAD'99).
//
// A Tree is an undirected tree over typed nodes (terminal, Steiner,
// insertion point) with wire lengths on the edges. Rooting a tree at a
// terminal produces a Rooted view with parent pointers and a post-order,
// which is the frame in which both the linear-time ARD algorithm and the
// repeater-insertion dynamic program operate.
package topo

import (
	"fmt"
	"math"
	"sort"

	"msrnet/internal/buslib"
	"msrnet/internal/geom"
)

// Kind classifies a node.
type Kind int

const (
	// Terminal is a pin of the net; carries electrical parameters and may
	// act as source and/or sink. The paper assumes (w.l.o.g.) terminals
	// are leaves; EnsureTerminalLeaves enforces this.
	Terminal Kind = iota
	// Steiner is a branch point of the routing tree.
	Steiner
	// Insertion is a prescribed degree-two candidate repeater location.
	Insertion
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case Terminal:
		return "terminal"
	case Steiner:
		return "steiner"
	case Insertion:
		return "insertion"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one vertex of the routing tree.
type Node struct {
	ID   int
	Kind Kind
	Pt   geom.Point
	// Term holds the terminal's electrical parameters when Kind==Terminal.
	Term buslib.Terminal
}

// Edge is an undirected wire between two nodes. Length is in µm; the
// electrical R and C follow from the technology's unit parasitics (and
// the width factor when wire sizing is enabled).
type Edge struct {
	ID   int
	A, B int
	// Length of the wire in µm. Defaults to the rectilinear distance
	// between the endpoints when added via AddEdgeAuto.
	Length float64
}

// Other returns the endpoint of e opposite to node id.
func (e Edge) Other(id int) int {
	if e.A == id {
		return e.B
	}
	return e.A
}

// Tree is an undirected routing tree.
type Tree struct {
	nodes []Node
	edges []Edge
	adj   [][]int // node id -> incident edge ids
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// AddTerminal appends a terminal node at p with the given electrical
// parameters and returns its id.
func (t *Tree) AddTerminal(p geom.Point, term buslib.Terminal) int {
	return t.addNode(Node{Kind: Terminal, Pt: p, Term: term})
}

// AddSteiner appends a Steiner node at p and returns its id.
func (t *Tree) AddSteiner(p geom.Point) int {
	return t.addNode(Node{Kind: Steiner, Pt: p})
}

// AddInsertion appends an insertion-point node at p and returns its id.
func (t *Tree) AddInsertion(p geom.Point) int {
	return t.addNode(Node{Kind: Insertion, Pt: p})
}

func (t *Tree) addNode(n Node) int {
	n.ID = len(t.nodes)
	t.nodes = append(t.nodes, n)
	t.adj = append(t.adj, nil)
	return n.ID
}

// AddEdge connects nodes a and b with a wire of the given length.
func (t *Tree) AddEdge(a, b int, length float64) int {
	if a == b {
		panic("topo: self-loop")
	}
	if length < 0 {
		panic("topo: negative wire length")
	}
	e := Edge{ID: len(t.edges), A: a, B: b, Length: length}
	t.edges = append(t.edges, e)
	t.adj[a] = append(t.adj[a], e.ID)
	t.adj[b] = append(t.adj[b], e.ID)
	return e.ID
}

// AddEdgeAuto connects a and b with a wire whose length is the
// rectilinear distance between their locations.
func (t *Tree) AddEdgeAuto(a, b int) int {
	return t.AddEdge(a, b, geom.Dist(t.nodes[a].Pt, t.nodes[b].Pt))
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumEdges returns the edge count.
func (t *Tree) NumEdges() int { return len(t.edges) }

// Node returns the node with the given id.
func (t *Tree) Node(id int) Node { return t.nodes[id] }

// Edge returns the edge with the given id.
func (t *Tree) Edge(id int) Edge { return t.edges[id] }

// Incident returns the edge ids incident to node id.
func (t *Tree) Incident(id int) []int { return t.adj[id] }

// Degree returns the degree of node id.
func (t *Tree) Degree(id int) int { return len(t.adj[id]) }

// Terminals returns the ids of all terminal nodes, in id order.
func (t *Tree) Terminals() []int {
	var out []int
	for _, n := range t.nodes {
		if n.Kind == Terminal {
			out = append(out, n.ID)
		}
	}
	return out
}

// Insertions returns the ids of all insertion-point nodes, in id order.
func (t *Tree) Insertions() []int {
	var out []int
	for _, n := range t.nodes {
		if n.Kind == Insertion {
			out = append(out, n.ID)
		}
	}
	return out
}

// Sources returns the ids of terminals that can drive the net.
func (t *Tree) Sources() []int {
	var out []int
	for _, n := range t.nodes {
		if n.Kind == Terminal && n.Term.IsSource {
			out = append(out, n.ID)
		}
	}
	return out
}

// Sinks returns the ids of terminals that can receive from the net.
func (t *Tree) Sinks() []int {
	var out []int
	for _, n := range t.nodes {
		if n.Kind == Terminal && n.Term.IsSink {
			out = append(out, n.ID)
		}
	}
	return out
}

// TotalWireLength returns the sum of edge lengths in µm.
func (t *Tree) TotalWireLength() float64 {
	var sum float64
	for _, e := range t.edges {
		sum += e.Length
	}
	return sum
}

// SetTerminal replaces the electrical parameters of terminal node id.
func (t *Tree) SetTerminal(id int, term buslib.Terminal) {
	if t.nodes[id].Kind != Terminal {
		panic(fmt.Sprintf("topo: node %d is not a terminal", id))
	}
	t.nodes[id].Term = term
}

// Validate checks structural invariants: the graph is a connected tree,
// insertion points have degree exactly two, and every node is reachable.
// Terminal-leaf violations are reported too; call EnsureTerminalLeaves
// first if non-leaf terminals are expected.
func (t *Tree) Validate() error {
	n := len(t.nodes)
	if n == 0 {
		return fmt.Errorf("topo: empty tree")
	}
	if len(t.edges) != n-1 {
		return fmt.Errorf("topo: %d nodes but %d edges; a tree needs n-1", n, len(t.edges))
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range t.adj[v] {
			u := t.edges[eid].Other(v)
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	if count != n {
		return fmt.Errorf("topo: graph is disconnected (%d of %d reachable)", count, n)
	}
	for _, nd := range t.nodes {
		switch nd.Kind {
		case Insertion:
			if len(t.adj[nd.ID]) != 2 {
				return fmt.Errorf("topo: insertion point %d has degree %d, want 2",
					nd.ID, len(t.adj[nd.ID]))
			}
		case Terminal:
			if len(t.adj[nd.ID]) != 1 {
				return fmt.Errorf("topo: terminal %d is not a leaf (degree %d); call EnsureTerminalLeaves",
					nd.ID, len(t.adj[nd.ID]))
			}
		}
	}
	return nil
}

// EnsureTerminalLeaves rewrites the tree so every terminal is a leaf, as
// assumed w.l.o.g. by the paper (§III): each non-leaf terminal becomes a
// Steiner node and a new terminal is attached to it by a zero-length
// edge, preserving electrical semantics.
func (t *Tree) EnsureTerminalLeaves() {
	for id := 0; id < len(t.nodes); id++ {
		n := t.nodes[id]
		if n.Kind == Terminal && len(t.adj[id]) > 1 {
			term := n.Term
			t.nodes[id].Kind = Steiner
			t.nodes[id].Term = buslib.Terminal{}
			leaf := t.AddTerminal(n.Pt, term)
			t.AddEdge(id, leaf, 0)
		}
	}
}

// SplitEdge subdivides edge eid at fraction frac (0 < frac < 1, measured
// from endpoint A) with a new node of the given kind, returning the new
// node's id. The original edge is re-pointed to span A–new; a fresh edge
// spans new–B.
func (t *Tree) SplitEdge(eid int, frac float64, kind Kind) int {
	if frac <= 0 || frac >= 1 {
		panic(fmt.Sprintf("topo: SplitEdge frac %g out of (0,1)", frac))
	}
	e := t.edges[eid]
	p := geom.Lerp(t.nodes[e.A].Pt, t.nodes[e.B].Pt, frac)
	var mid int
	switch kind {
	case Steiner:
		mid = t.AddSteiner(p)
	case Insertion:
		mid = t.AddInsertion(p)
	default:
		panic("topo: SplitEdge can only create steiner or insertion nodes")
	}
	lenA := e.Length * frac
	lenB := e.Length - lenA
	// Rewire: eid becomes A–mid; new edge mid–B.
	t.edges[eid].B = mid
	t.edges[eid].Length = lenA
	// Fix adjacency of the old B endpoint.
	t.removeIncident(e.B, eid)
	t.adj[mid] = append(t.adj[mid], eid)
	t.AddEdge(mid, e.B, lenB)
	return mid
}

func (t *Tree) removeIncident(node, eid int) {
	a := t.adj[node]
	for i, id := range a {
		if id == eid {
			a[i] = a[len(a)-1]
			t.adj[node] = a[:len(a)-1]
			return
		}
	}
	panic("topo: removeIncident: edge not incident")
}

// PlaceInsertionPoints subdivides every wire with evenly spaced insertion
// points so that consecutive candidate locations are at most maxSpacing
// apart and every original wire carries at least one point — the
// placement rule of §VI (800 µm, ≥1 per segment). Zero-length edges
// (pendants from EnsureTerminalLeaves) are skipped. It returns the number
// of insertion points added.
func (t *Tree) PlaceInsertionPoints(maxSpacing float64) int {
	if maxSpacing <= 0 {
		panic("topo: non-positive maxSpacing")
	}
	added := 0
	orig := len(t.edges)
	for eid := 0; eid < orig; eid++ {
		length := t.edges[eid].Length
		if length == 0 {
			continue
		}
		k := int(math.Ceil(length/maxSpacing)) - 1
		if k < 1 {
			k = 1
		}
		// Split repeatedly: after placing point i of k on the remaining
		// A-side piece, the original eid keeps shrinking toward A.
		// Place from the B end so fractions stay simple: split eid at
		// fraction i/(k+1) of the *original* wire; easier to iterate by
		// splitting the current eid at 1/(remaining+1) from A.
		cur := eid
		remaining := k
		for remaining > 0 {
			frac := 1.0 / float64(remaining+1)
			// Split cur at (1-frac) from A so the new node is nearest B,
			// leaving cur spanning A..new for the next iteration? Simpler:
			// split at frac from A; the A-side piece keeps id cur and is
			// final; continue with the new B-side edge.
			mid := t.SplitEdge(cur, frac, Insertion)
			added++
			// The B-side edge is the newest edge.
			cur = len(t.edges) - 1
			remaining--
			_ = mid
		}
	}
	return added
}

// Rooted is a tree oriented away from a root terminal. Parent[root] = -1.
type Rooted struct {
	Tree *Tree
	Root int
	// Parent[v] is v's parent node id (or -1 for the root).
	Parent []int
	// ParentEdge[v] is the edge id connecting v to Parent[v] (or -1).
	ParentEdge []int
	// Children[v] lists v's children in the rooted orientation.
	Children [][]int
	// PostOrder lists node ids so every node appears after all of its
	// children — the evaluation order of the bottom-up algorithms.
	PostOrder []int
}

// RootAt orients the tree away from the given root node. The paper roots
// at an arbitrary terminal; any node is accepted here, which the tests
// exploit.
func (t *Tree) RootAt(root int) *Rooted {
	n := len(t.nodes)
	r := &Rooted{
		Tree:       t,
		Root:       root,
		Parent:     make([]int, n),
		ParentEdge: make([]int, n),
		Children:   make([][]int, n),
	}
	for i := range r.Parent {
		r.Parent[i] = -1
		r.ParentEdge[i] = -1
	}
	// Iterative DFS to compute parents and a post-order.
	type frame struct{ node, idx int }
	stack := []frame{{root, 0}}
	visited := make([]bool, n)
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		adj := t.adj[f.node]
		if f.idx < len(adj) {
			eid := adj[f.idx]
			f.idx++
			u := t.edges[eid].Other(f.node)
			if !visited[u] {
				visited[u] = true
				r.Parent[u] = f.node
				r.ParentEdge[u] = eid
				r.Children[f.node] = append(r.Children[f.node], u)
				stack = append(stack, frame{u, 0})
			}
			continue
		}
		r.PostOrder = append(r.PostOrder, f.node)
		stack = stack[:len(stack)-1]
	}
	// Deterministic child order.
	for _, c := range r.Children {
		sort.Ints(c)
	}
	return r
}

// Depth returns the number of edges from v to the root.
func (r *Rooted) Depth(v int) int {
	d := 0
	for r.Parent[v] != -1 {
		v = r.Parent[v]
		d++
	}
	return d
}

// PathToRoot returns the node ids from v up to and including the root.
func (r *Rooted) PathToRoot(v int) []int {
	var out []int
	for v != -1 {
		out = append(out, v)
		v = r.Parent[v]
	}
	return out
}

// Path returns the node ids along the unique tree path from u to v
// (inclusive of both).
func (r *Rooted) Path(u, v int) []int {
	pu := r.PathToRoot(u)
	pv := r.PathToRoot(v)
	inPu := make(map[int]int, len(pu)) // node -> index in pu
	for i, x := range pu {
		inPu[x] = i
	}
	lca := -1
	lcaIdxV := -1
	for i, x := range pv {
		if _, ok := inPu[x]; ok {
			lca = x
			lcaIdxV = i
			break
		}
	}
	if lca == -1 {
		panic("topo: Path in disconnected tree")
	}
	out := append([]int{}, pu[:inPu[lca]+1]...)
	for i := lcaIdxV - 1; i >= 0; i-- {
		out = append(out, pv[i])
	}
	return out
}
