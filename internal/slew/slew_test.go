package slew

import (
	"math"
	"math/rand"
	"testing"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/geom"
	"msrnet/internal/rctree"
	"msrnet/internal/testnet"
	"msrnet/internal/topo"
)

// TestReducesToElmore: with zero sensitivity and step inputs, the
// slew-aware delays must equal the Elmore delays on every node of random
// repeater-annotated nets.
func TestReducesToElmore(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 1 + r.Intn(8)
		tr := testnet.RandTree(r, cfg)
		tech := testnet.RandTech(r, 2, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		asg := testnet.RandAssignment(r, rt, tech, 0.5)
		n := rctree.NewNet(rt, tech, asg)
		for _, s := range tr.Sources() {
			elm := n.DelaysFrom(s)
			res, err := DelaysFrom(n, s, Model{})
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < tr.NumNodes(); v++ {
				if math.Abs(res.Delay[v]-elm[v]) > 1e-9*(1+math.Abs(elm[v])) {
					t.Fatalf("trial %d: node %d: slew-aware %g != elmore %g",
						trial, v, res.Delay[v], elm[v])
				}
			}
		}
	}
}

// TestMonotoneInInputSlew: slower input edges can only slow everything
// down (with positive sensitivity).
func TestMonotoneInInputSlew(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		tr := testnet.RandTree(r, testnet.DefaultConfig())
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		asg := testnet.RandAssignment(r, rt, tech, 0.5)
		n := rctree.NewNet(rt, tech, asg)
		s := tr.Sources()[0]
		fast, err := DelaysFrom(n, s, Model{SlewSensitivity: 0.3, InputSlew: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := DelaysFrom(n, s, Model{SlewSensitivity: 0.3, InputSlew: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < tr.NumNodes(); v++ {
			if slow.Delay[v] < fast.Delay[v]-1e-9 {
				t.Fatalf("trial %d: node %d sped up with slower input", trial, v)
			}
			if slow.Slew[v] < fast.Slew[v]-1e-9 {
				t.Fatalf("trial %d: node %d slew shrank with slower input", trial, v)
			}
		}
	}
}

// TestRepeaterRegeneratesEdges: on a long line, the far-end transition
// time with a mid-line repeater must be sharper than without.
func TestRepeaterRegeneratesEdges(t *testing.T) {
	mk := func(withRep bool) Result {
		tr := topo.New()
		a := tr.AddTerminal(geom.Pt(0, 0), buslib.DefaultTerminal("a"))
		b := tr.AddTerminal(geom.Pt(20000, 0), buslib.DefaultTerminal("b"))
		e := tr.AddEdge(a, b, 20000)
		mid := tr.SplitEdge(e, 0.5, topo.Insertion)
		tech := buslib.Default()
		asg := rctree.Assignment{}
		if withRep {
			asg.Repeaters = map[int]rctree.Placed{
				mid: {Rep: tech.Repeaters[0], ASideUp: true},
			}
		}
		n := rctree.NewNet(tr.RootAt(a), tech, asg)
		res, err := DelaysFrom(n, 0, Model{SlewSensitivity: 0.2, InputSlew: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := mk(false)
	buffered := mk(true)
	// Node 1 is terminal b in both constructions.
	if buffered.Slew[1] >= plain.Slew[1] {
		t.Errorf("repeater did not sharpen the far edge: %g vs %g",
			buffered.Slew[1], plain.Slew[1])
	}
	if buffered.Delay[1] >= plain.Delay[1] {
		t.Errorf("repeater did not speed up the line under slew model: %g vs %g",
			buffered.Delay[1], plain.Delay[1])
	}
}

// TestSlewAwareARD: with positive sensitivity the generalized ARD is at
// least the Elmore ARD, and reduces to it at zero sensitivity.
func TestSlewAwareARD(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		tr := testnet.RandTree(r, testnet.DefaultConfig())
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		asg := testnet.RandAssignment(r, rt, tech, 0.4)
		n := rctree.NewNet(rt, tech, asg)
		base := ard.Compute(n, ard.Options{}).ARD
		zero, _, _, err := ARD(n, Model{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(zero-base) > 1e-9*(1+base) {
			t.Fatalf("trial %d: zero-model ARD %g != elmore ARD %g", trial, zero, base)
		}
		withSlew, cs, ck, err := ARD(n, Model{SlewSensitivity: 0.3, InputSlew: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		if withSlew < base-1e-9 {
			t.Fatalf("trial %d: slew-aware ARD %g below elmore %g", trial, withSlew, base)
		}
		if cs < 0 || ck < 0 {
			t.Fatalf("trial %d: missing critical pair", trial)
		}
	}
}

// TestErrors rejects non-source launches.
func TestErrors(t *testing.T) {
	tr := topo.New()
	a := tr.AddTerminal(geom.Pt(0, 0), buslib.DefaultTerminal("a"))
	snk := buslib.DefaultTerminal("b")
	snk.IsSource = false
	b := tr.AddTerminal(geom.Pt(100, 0), snk)
	tr.AddEdge(a, b, 100)
	n := rctree.NewNet(tr.RootAt(a), buslib.Default(), rctree.Assignment{})
	if _, err := DelaysFrom(n, b, Model{}); err == nil {
		t.Error("non-source accepted")
	}
}
