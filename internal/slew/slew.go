// Package slew implements a slew-aware generalized delay evaluation for
// repeater-annotated multisource nets, in the spirit of the "generalized
// buffer delay model incorporating signal slew" of Lillis, Cheng & Lin
// (JSSC'96, the paper's reference [15]) that the TCAD'99 paper cites as
// part of its single-source lineage.
//
// Model (a standard PERI-style approximation):
//
//   - Within an RC stage, the step-response transition time at a node is
//     ln 9 ≈ 2.2 times its Elmore delay from the stage's driving point;
//     an input transition degrades it in quadrature:
//     slew_out = sqrt(slew_in² + (ln9 · elmore_stage)²).
//   - A buffer's delay gains a slew-sensitivity term: delay = intrinsic +
//     R·Cload + K·slew_in, with K the library's (dimensionless)
//     sensitivity; its output transition is the driven stage's own
//     step response (buffers regenerate edges).
//
// With K = 0 and a step input the model reduces exactly to Elmore, which
// the tests pin down. Because slews differ per source, the evaluation is
// inherently per-source (O(s·n)) — the paper's footnote 7 observes that
// the ARD is well defined for any delay measure, and this package
// computes that generalized ARD; the *linear-time* trick of §III and the
// optimal DP of §IV are specific to load-additive measures like Elmore.
package slew

import (
	"fmt"
	"math"

	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// Ln9 is the step-response transition-time factor (10–90%) of a
// single-pole RC stage relative to its Elmore delay.
const Ln9 = 2.1972245773362196

// Model parameterizes the slew-aware evaluation.
type Model struct {
	// SlewSensitivity is K: the extra buffer delay per unit of input
	// transition time (dimensionless, typically 0.1–0.5 for mid-rail
	// switching thresholds).
	SlewSensitivity float64
	// InputSlew is the transition time of signals launched at source
	// terminals, in ns. Zero means step inputs.
	InputSlew float64
}

// Result carries per-node delay and transition time from one source.
type Result struct {
	Delay []float64 // ns, same reference as rctree.DelaysFrom
	Slew  []float64 // ns transition time at each node
}

// DelaysFrom computes slew-aware delays from source terminal s to every
// node.
func DelaysFrom(n *rctree.Net, s int, m Model) (Result, error) {
	t := n.R.Tree
	nd := t.Node(s)
	if nd.Kind != topo.Terminal || !nd.Term.IsSource {
		return Result{}, fmt.Errorf("slew: node %d is not a source terminal", s)
	}
	res := Result{
		Delay: make([]float64, t.NumNodes()),
		Slew:  make([]float64, t.NumNodes()),
	}
	for i := range res.Delay {
		res.Delay[i] = math.Inf(1)
		res.Slew[i] = math.Inf(1)
	}
	// Pure-Elmore per-node delays provide the stage-local step responses.
	elm := n.DelaysFrom(s)

	rout, intr := driverAt(n, s)
	// The driver is itself a buffer: its delay includes the slew penalty
	// on the primary input transition.
	res.Delay[s] = intr + rout*stageCap(n, s) + m.SlewSensitivity*m.InputSlew
	// Per-node stage-local Elmore (RC only, from the stage's driving
	// buffer) and the transition time at the stage's entry.
	stageElm := make([]float64, t.NumNodes())
	entrySlew := make([]float64, t.NumNodes())
	stageElm[s] = rout * stageCap(n, s)
	entrySlew[s] = m.InputSlew
	res.Slew[s] = quad(entrySlew[s], Ln9*stageElm[s])

	type hop struct{ from, to, eid int }
	var queue []hop
	push := func(from int) {
		for _, eid := range t.Incident(from) {
			to := t.Edge(eid).Other(from)
			if math.IsInf(res.Delay[to], 1) {
				queue = append(queue, hop{from, to, eid})
			}
		}
	}
	push(s)
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if !math.IsInf(res.Delay[h.to], 1) {
			continue
		}
		if pl, ok := n.Assign.Repeaters[h.from]; ok && h.from != s {
			// Crossing the repeater at h.from: its input sees the slew
			// accumulated there; its output regenerates the edge.
			var d, r float64
			var load float64
			if h.to == n.R.Parent[h.from] {
				d, r = pl.UpDelay()
				load = n.EdgeCap(h.eid) + n.CapAboveFrom[h.from]
			} else {
				d, r = pl.DownDelay()
				load = n.EdgeCap(h.eid) + n.CapBelow[h.to]
			}
			wireElm := n.EdgeRes(h.eid) * (n.EdgeCap(h.eid)/2 + capAway(n, h.to, h.from))
			res.Delay[h.to] = res.Delay[h.from] + d + r*load +
				m.SlewSensitivity*res.Slew[h.from] + wireElm
			stageElm[h.to] = r*load + wireElm
			entrySlew[h.to] = 0 // regenerated edge
		} else {
			// Same stage: the Elmore difference is the exact RC
			// increment between the two nodes.
			dElm := elm[h.to] - elm[h.from]
			res.Delay[h.to] = res.Delay[h.from] + dElm
			stageElm[h.to] = stageElm[h.from] + dElm
			entrySlew[h.to] = entrySlew[h.from]
		}
		res.Slew[h.to] = quad(entrySlew[h.to], Ln9*stageElm[h.to])
		push(h.to)
	}
	return res, nil
}

// ARD computes the slew-aware augmented RC-diameter: the maximum over
// source/sink pairs of AAT + slew-aware delay + Q. Self pairs excluded.
func ARD(n *rctree.Net, m Model) (ard float64, critSrc, critSink int, err error) {
	t := n.R.Tree
	ard = math.Inf(-1)
	critSrc, critSink = -1, -1
	for _, s := range t.Sources() {
		res, err := DelaysFrom(n, s, m)
		if err != nil {
			return 0, -1, -1, err
		}
		aat := t.Node(s).Term.AAT
		for _, v := range t.Sinks() {
			if v == s {
				continue
			}
			d := aat + res.Delay[v] + t.Node(v).Term.Q
			if d > ard {
				ard, critSrc, critSink = d, s, v
			}
		}
	}
	return ard, critSrc, critSink, nil
}

func quad(a, b float64) float64 { return math.Sqrt(a*a + b*b) }

func driverAt(n *rctree.Net, s int) (rout, intr float64) {
	term := n.R.Tree.Node(s).Term
	if d, ok := n.Assign.Drivers[s]; ok {
		return d.Rout, d.Intrinsic
	}
	return term.Rout, term.DriverIntrinsic
}

// stageCap mirrors rctree.Net.StageCapAt for source terminals.
func stageCap(n *rctree.Net, v int) float64 { return n.StageCapAt(v) }

// capAway mirrors the stage-limited capacitance at `to` seen from `from`,
// reconstructed from the exported capacitance passes.
func capAway(n *rctree.Net, to, from int) float64 {
	if pl, ok := n.Assign.Repeaters[to]; ok {
		if from == n.R.Parent[to] {
			return pl.CapUpSide()
		}
		return pl.CapDownSide()
	}
	t := n.R.Tree
	var c float64
	if t.Node(to).Kind == topo.Terminal {
		c += t.Node(to).Term.Cin
	}
	for _, ch := range n.R.Children[to] {
		if ch == from {
			continue
		}
		c += n.EdgeCap(n.R.ParentEdge[ch]) + n.CapBelow[ch]
	}
	if to != n.R.Root && n.R.Parent[to] != from {
		c += n.EdgeCap(n.R.ParentEdge[to]) + n.CapAboveFrom[to]
	}
	return c
}
