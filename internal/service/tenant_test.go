package service

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"msrnet/internal/obs"
)

func writeTenantsFile(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTenantsValidation(t *testing.T) {
	good := `{"schema":"msrnet-tenants/v1","tenants":[
		{"name":"acme","api_key":"ka","weight":3,"queue_slots":8,"nets_per_sec":100},
		{"name":"beta","api_key":"kb"}]}`
	cfgs, err := LoadTenants(writeTenantsFile(t, good))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Weight != 3 || cfgs[1].Weight != 1 {
		t.Fatalf("bad load: %+v (weight must default to 1)", cfgs)
	}

	bad := map[string]string{
		"schema":        `{"schema":"nope/v9","tenants":[{"name":"a","api_key":"k"}]}`,
		"empty":         `{"schema":"msrnet-tenants/v1","tenants":[]}`,
		"no name":       `{"schema":"msrnet-tenants/v1","tenants":[{"api_key":"k"}]}`,
		"no api_key":    `{"schema":"msrnet-tenants/v1","tenants":[{"name":"a"}]}`,
		"dup name":      `{"schema":"msrnet-tenants/v1","tenants":[{"name":"a","api_key":"k1"},{"name":"a","api_key":"k2"}]}`,
		"dup key":       `{"schema":"msrnet-tenants/v1","tenants":[{"name":"a","api_key":"k"},{"name":"b","api_key":"k"}]}`,
		"negative rate": `{"schema":"msrnet-tenants/v1","tenants":[{"name":"a","api_key":"k","nets_per_sec":-1}]}`,
	}
	for name, body := range bad {
		if _, err := LoadTenants(writeTenantsFile(t, body)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

// TestTenantAuthRequired: with a tenants file, submissions without a
// known API key are 401; the right key resolves to the right tenant,
// visible on the explain report.
func TestTenantAuthRequired(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 4, Tenants: []TenantConfig{
		{Name: "acme", APIKey: "ka", Weight: 1},
		{Name: "beta", APIKey: "kb", Weight: 1},
	}})
	net := testNetFile(t, 51, 6)
	req := &Request{Version: SchemaVersion, Explain: true,
		Jobs: []Job{{ID: "j", Mode: "ard", Net: net}}}

	for name, ctx := range map[string]context.Context{
		"no key":      context.Background(),
		"unknown key": WithAPIKey(context.Background(), "stolen"),
	} {
		if _, serr := d.Submit(ctx, req); serr == nil ||
			serr.Status != http.StatusUnauthorized || serr.Code != ErrUnauthorized {
			t.Fatalf("%s: want 401 %s, got %v", name, ErrUnauthorized, serr)
		}
	}

	resp, serr := d.Submit(WithAPIKey(context.Background(), "kb"), req)
	if serr != nil {
		t.Fatal(serr)
	}
	r := resp.Results[0]
	if r.Status != StatusOK || r.Explain == nil || r.Explain.Tenant != "beta" {
		t.Fatalf("want beta-attributed success, got %+v", r)
	}
}

// TestTenantQueueQuota: one tenant's queue-slot quota rejects its own
// overflow with 429 quota_exceeded and a Retry-After, while the global
// queue still admits other tenants.
func TestTenantQueueQuota(t *testing.T) {
	reg := obs.New()
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 8, Reg: reg, Tenants: []TenantConfig{
		{Name: "capped", APIKey: "kc", Weight: 1, QueueSlots: 1},
		{Name: "open", APIKey: "ko", Weight: 1},
	}})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	d.execHook = func(ctx context.Context, tk *task) Result {
		started <- struct{}{}
		<-release
		return Result{ID: tk.label, Status: StatusOK}
	}

	submit := func(key, id string, seed int64) *SubmitError {
		_, serr := d.Submit(WithAPIKey(context.Background(), key),
			oneJobRequest(Job{ID: id, Mode: "ard", Net: testNetFile(t, seed, 6)}))
		return serr
	}
	var wg sync.WaitGroup
	async := func(key, id string, seed int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if serr := submit(key, id, seed); serr != nil {
				t.Errorf("job %s: %v", id, serr)
			}
		}()
	}
	// Cleanups run LIFO: unblock the workers first, then wait out the
	// in-flight submits, then (from newTestDaemon) close the daemon.
	t.Cleanup(wg.Wait)
	t.Cleanup(func() { close(release) })

	async("kc", "busy", 61) // occupies the worker (slot released at dequeue)
	<-started
	async("kc", "queued", 62) // occupies capped's one queue slot
	waitFor(t, func() bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.tenants["capped"].used == 1
	})

	serr := submit("kc", "over", 63)
	if serr == nil || serr.Status != http.StatusTooManyRequests || serr.Code != ErrQuotaExceeded {
		t.Fatalf("want 429 %s for capped overflow, got %v", ErrQuotaExceeded, serr)
	}
	if serr.RetryAfter < time.Second {
		t.Fatalf("quota rejection carries no Retry-After: %v", serr.RetryAfter)
	}
	if !strings.Contains(serr.Msg, "capped") {
		t.Fatalf("rejection should name the tenant: %q", serr.Msg)
	}
	if got := reg.Counter("svc/tenant/capped/jobs_rejected").Value(); got != 1 {
		t.Fatalf("capped jobs_rejected = %d, want 1", got)
	}

	// The global queue has 7 free slots: another tenant sails through.
	async("ko", "fine", 64)
	waitFor(t, func() bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.tenants["open"].used == 1
	})
}

// TestTenantRateQuota: the deficit token bucket admits an oversized
// batch whole, then rejects the next submission with a Retry-After
// sized to the deficit — the tenant's personal backoff, not a guess.
func TestTenantRateQuota(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2, QueueDepth: 16, Tenants: []TenantConfig{
		{Name: "metered", APIKey: "km", Weight: 1, NetsPerSec: 1},
	}})
	d.execHook = func(ctx context.Context, tk *task) Result {
		return Result{ID: tk.label, Status: StatusOK}
	}
	ctx := WithAPIKey(context.Background(), "km")
	batch := &Request{Version: SchemaVersion, Jobs: []Job{
		{ID: "a", Mode: "ard", Net: testNetFile(t, 71, 6)},
		{ID: "b", Mode: "ard", Net: testNetFile(t, 72, 6)},
		{ID: "c", Mode: "ard", Net: testNetFile(t, 73, 6)},
	}}
	if _, serr := d.Submit(ctx, batch); serr != nil {
		t.Fatalf("burst batch should be admitted whole: %v", serr)
	}
	// Bucket: burst 1 - 3 jobs = 2-job deficit; at 1 net/sec that is a
	// 3s wait to get back above zero.
	_, serr := d.Submit(ctx, oneJobRequest(Job{ID: "d", Mode: "ard", Net: testNetFile(t, 74, 6)}))
	if serr == nil || serr.Code != ErrQuotaExceeded || serr.Status != http.StatusTooManyRequests {
		t.Fatalf("want 429 %s in deficit, got %v", ErrQuotaExceeded, serr)
	}
	if serr.RetryAfter < 2*time.Second || serr.RetryAfter > 3*time.Second {
		t.Fatalf("Retry-After = %v, want ~3s for a 2-job deficit at 1/sec", serr.RetryAfter)
	}
}

// TestFairShareDispatch: with both tenants backlogged behind one busy
// worker, dispatch follows stride weights — the weight-3 tenant's three
// jobs all run before the weight-1 tenant's, even though the light
// tenant enqueued first.
func TestFairShareDispatch(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 16, Tenants: []TenantConfig{
		{Name: "light", APIKey: "kl", Weight: 1},
		{Name: "heavy", APIKey: "kh", Weight: 3},
	}})
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	d.execHook = func(ctx context.Context, tk *task) Result {
		if tk.label == "gate" {
			started <- struct{}{}
			<-gate
		} else {
			mu.Lock()
			order = append(order, tk.tn.cfg.Name)
			mu.Unlock()
		}
		return Result{ID: tk.label, Status: StatusOK}
	}

	var wg sync.WaitGroup
	submit := func(key string, req *Request) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, serr := d.Submit(WithAPIKey(context.Background(), key), req); serr != nil {
				t.Errorf("submit: %v", serr)
			}
		}()
	}
	submit("kl", oneJobRequest(Job{ID: "gate", Mode: "ard", Net: testNetFile(t, 81, 6)}))
	<-started // worker is pinned; everything below queues up behind it

	submit("kl", &Request{Version: SchemaVersion, Jobs: []Job{
		{ID: "l1", Mode: "ard", Net: testNetFile(t, 82, 6)},
		{ID: "l2", Mode: "ard", Net: testNetFile(t, 83, 6)},
		{ID: "l3", Mode: "ard", Net: testNetFile(t, 84, 6)},
	}})
	submit("kh", &Request{Version: SchemaVersion, Jobs: []Job{
		{ID: "h1", Mode: "ard", Net: testNetFile(t, 85, 6)},
		{ID: "h2", Mode: "ard", Net: testNetFile(t, 86, 6)},
		{ID: "h3", Mode: "ard", Net: testNetFile(t, 87, 6)},
	}})
	waitFor(t, func() bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.queued == 6
	})
	close(gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("ran %d jobs, want 6: %v", len(order), order)
	}
	// Stride math: light re-enters at pass 1 (it ran the gate job),
	// heavy starts at 0 and advances by 1/3 per dispatch — so heavy owns
	// the first three dequeues deterministically; the tail order depends
	// on tie-breaking and is not asserted.
	for i := 0; i < 3; i++ {
		if order[i] != "heavy" {
			t.Fatalf("dispatch order %v: slot %d went to %s, want heavy", order, i, order[i])
		}
	}
}

// TestDefaultTenantBackCompat: without a tenants file there is no auth
// and every submission lands on the unlimited default tenant.
func TestDefaultTenantBackCompat(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 4})
	d.execHook = func(ctx context.Context, tk *task) Result {
		return Result{ID: tk.label, Status: StatusOK}
	}
	resp, serr := d.Submit(context.Background(),
		oneJobRequest(Job{ID: "j", Mode: "ard", Net: testNetFile(t, 91, 6)}))
	if serr != nil || resp.Results[0].Status != StatusOK {
		t.Fatalf("keyless submit must work without tenants: %v %+v", serr, resp)
	}
	body, ok := d.TenantsState().(tenantsBody)
	if !ok || body.AuthRequired || len(body.Tenants) != 1 || body.Tenants[0].Name != DefaultTenant {
		t.Fatalf("default tenancy state wrong: %+v", body)
	}
}
