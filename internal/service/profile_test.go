package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"msrnet/internal/obs"
	"msrnet/internal/obs/reqctx"
	"msrnet/internal/solveprof"
)

// TestProfileOnResult: Request.Profile yields a validated
// msrnet-solveprof/v1 artifact on the explain report (profile implies
// explain), reconciled against the job's own solve stats.
func TestProfileOnResult(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2, Reg: obs.New()})
	net := testNetFile(t, 4, 10)

	req := oneJobRequest(Job{ID: "prof-1", Mode: "msri", Net: net})
	req.Profile = true // note: Explain deliberately unset
	resp, serr := d.Submit(context.Background(), req)
	if serr != nil {
		t.Fatal(serr)
	}
	r := resp.Results[0]
	if r.Status != StatusOK {
		t.Fatalf("result: %+v", r)
	}
	e := r.Explain
	if e == nil {
		t.Fatal("Profile must imply an explain report on the result")
	}
	p := e.Profile
	if p == nil {
		t.Fatal("Explain.Profile missing with Request.Profile set")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("profile does not validate: %v", err)
	}
	if p.Source != "msrnetd" || p.Workload != e.JobID {
		t.Errorf("profile identity: source=%q workload=%q, want msrnetd/%s", p.Source, p.Workload, e.JobID)
	}
	if e.Solve == nil {
		t.Fatal("solve shape missing")
	}
	if p.Totals.Deaths != e.Solve.Dropped {
		t.Errorf("profile deaths %d != solve dropped %d", p.Totals.Deaths, e.Solve.Dropped)
	}
	if r.Opt == nil || p.Totals.Survived != len(r.Opt.Suite) {
		t.Errorf("profile survivors %d != suite points %d", p.Totals.Survived, len(r.Opt.Suite))
	}
	if p.Stats == nil || p.Stats.Dropped != e.Solve.Dropped {
		t.Errorf("profile stats echo: %+v", p.Stats)
	}

	// The same job without the flag gets neither profile nor explain.
	resp2, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "prof-2", Mode: "msri", Net: net}))
	if serr != nil {
		t.Fatal(serr)
	}
	if resp2.Results[0].Explain != nil {
		t.Error("explain leaked onto an unasking request")
	}
}

// TestProfileBypassesCache: a profiled request recomputes even when the
// result is cached (a cached result has no lifecycle to attribute), and
// the profile never enters the cache.
func TestProfileBypassesCache(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, CacheSize: 8, Reg: obs.New()})
	net := testNetFile(t, 5, 8)
	job := Job{ID: "warm", Mode: "msri", Net: net}

	// Warm the cache.
	if _, serr := d.Submit(context.Background(), oneJobRequest(job)); serr != nil {
		t.Fatal(serr)
	}

	req := oneJobRequest(Job{ID: "profiled", Mode: "msri", Net: net})
	req.Profile = true
	resp, serr := d.Submit(context.Background(), req)
	if serr != nil {
		t.Fatal(serr)
	}
	r := resp.Results[0]
	if r.Cached {
		t.Fatal("profiled request served from cache")
	}
	if r.Explain == nil || r.Explain.Profile == nil {
		t.Fatalf("profiled recompute lost its profile: %+v", r.Explain)
	}

	// A later plain request hits the cache and carries no decoration.
	req3 := oneJobRequest(Job{ID: "plain", Mode: "msri", Net: net})
	req3.Explain = true
	resp3, serr := d.Submit(context.Background(), req3)
	if serr != nil {
		t.Fatal(serr)
	}
	r3 := resp3.Results[0]
	if !r3.Cached {
		t.Fatalf("expected a cache hit after the profiled recompute: %+v", r3)
	}
	if r3.Explain == nil || r3.Explain.Profile != nil {
		t.Errorf("cache-hit explain must not carry a profile: %+v", r3.Explain)
	}
}

// TestProfileOverHTTP: ?profile=1 decorates the wire result, and the
// same artifact is retrievable from GET /debug/jobs/{id}.
func TestProfileOverHTTP(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2, Reg: obs.New()})
	srv := httptest.NewServer(reqctx.Middleware(d.Handler()))
	defer srv.Close()

	body, _ := json.Marshal(oneJobRequest(Job{ID: "http-prof", Mode: "msri", Net: testNetFile(t, 6, 8)}))
	hresp, err := http.Post(srv.URL+"/v1/jobs?profile=1", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	e := resp.Results[0].Explain
	if e == nil || e.Profile == nil {
		t.Fatalf("?profile=1 did not produce a profile: %+v", e)
	}
	if e.Profile.Schema != solveprof.Schema {
		t.Errorf("schema = %q, want %q", e.Profile.Schema, solveprof.Schema)
	}
	if err := e.Profile.Validate(); err != nil {
		t.Errorf("wire profile invalid: %v", err)
	}

	var byJob Explain
	getJSON(t, srv.URL+"/debug/jobs/"+e.JobID, &byJob)
	if byJob.Profile == nil {
		t.Fatal("/debug/jobs/{id} lost the profile")
	}
	if byJob.Profile.Totals.Deaths != e.Profile.Totals.Deaths {
		t.Errorf("debug profile deaths %d != wire profile deaths %d",
			byJob.Profile.Totals.Deaths, e.Profile.Totals.Deaths)
	}
}
