package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"msrnet/internal/cluster"
	"msrnet/internal/netio"
	"msrnet/internal/obs"
)

// This file is the fleet acceptance test (DESIGN.md §13): a
// deterministic multi-daemon cluster over the in-memory transport,
// driven round by round, asserting the properties the clustering layer
// promises — gossip convergence with ring agreement, single-hop shard
// cache hits across peers, work-stealing instead of 429, and the
// byte-equality invariant (a fleet answers exactly what one daemon
// answers) surviving peer death and partitions with zero errors.

// fleetID names fleet member i.
func fleetID(i int) cluster.ID { return cluster.ID(fmt.Sprintf("node-%d", i)) }

// testFleet is an n-daemon cluster on one in-memory network. Gossip is
// driven manually with tick/converge so every test run takes the same
// rounds in the same order.
type testFleet struct {
	t     *testing.T
	tr    *cluster.MemTransport
	nodes []*cluster.Node
	ds    []*Daemon
	regs  []*obs.Registry
}

// newTestFleet builds n clustered daemons seeded in a ring (each knows
// only its successor — convergence must be earned through gossip). mod
// may adjust a member's service config before construction.
func newTestFleet(t *testing.T, n int, mod func(i int, cfg *Config)) *testFleet {
	t.Helper()
	f := &testFleet{t: t, tr: cluster.NewMemTransport()}
	for i := 0; i < n; i++ {
		id := fleetID(i)
		next := fleetID((i + 1) % n)
		reg := obs.New()
		node := cluster.NewNode(cluster.Config{
			Self:  cluster.Peer{ID: id, Addr: string(id)},
			Seeds: []cluster.Peer{{ID: next, Addr: string(next)}},
			Params: cluster.Params{
				ViewSize: 8, Fanout: 2, SuspectAfter: 2, StaleTicks: 4,
			},
			Transport: f.tr,
			Seed:      int64(i + 1),
			Epoch:     int64(i+1) * 1000,
			Reg:       reg,
			Logger:    quietLogger(),
		})
		cfg := Config{Workers: 2, QueueDepth: 8, CacheSize: 64,
			Reg: reg, Cluster: node, Logger: quietLogger()}
		if mod != nil {
			mod(i, &cfg)
		}
		d := newTestDaemon(t, cfg) // New installs the Local adapter on node
		f.tr.Add(node)
		f.nodes = append(f.nodes, node)
		f.ds = append(f.ds, d)
		f.regs = append(f.regs, reg)
	}
	return f
}

// tick runs one gossip round on the listed members (all when empty) in
// index order.
func (f *testFleet) tick(idx ...int) {
	if len(idx) == 0 {
		for i := range f.nodes {
			idx = append(idx, i)
		}
	}
	for _, i := range idx {
		f.nodes[i].Tick()
	}
}

// converge drives rounds on the listed members (all when empty) until
// each sees exactly that member set, failing the test after the round
// budget.
func (f *testFleet) converge(rounds int, idx ...int) {
	f.t.Helper()
	if len(idx) == 0 {
		for i := range f.nodes {
			idx = append(idx, i)
		}
	}
	want := map[cluster.ID]bool{}
	for _, i := range idx {
		want[fleetID(i)] = true
	}
	for r := 0; r < rounds; r++ {
		f.tick(idx...)
		if f.membershipIs(want, idx...) {
			return
		}
	}
	f.t.Fatalf("fleet did not converge on %d members within %d rounds", len(idx), rounds)
}

// membershipIs reports whether each listed member's view is exactly
// the wanted ID set.
func (f *testFleet) membershipIs(want map[cluster.ID]bool, idx ...int) bool {
	for _, i := range idx {
		got := map[cluster.ID]bool{}
		for _, m := range f.nodes[i].Members() {
			got[m.ID] = true
		}
		if len(got) != len(want) {
			return false
		}
		for id := range want {
			if !got[id] {
				return false
			}
		}
	}
	return true
}

// ownerIndex resolves which fleet member owns key on node i's ring.
func (f *testFleet) ownerIndex(i int, key string) int {
	f.t.Helper()
	owner, ok := f.nodes[i].Owner(key)
	if !ok {
		f.t.Fatalf("node %d has an empty ring", i)
	}
	for j := range f.nodes {
		if fleetID(j) == owner.ID {
			return j
		}
	}
	f.t.Fatalf("owner %q is not a fleet member", owner.ID)
	return -1
}

// canonicalResult strips per-request decoration (label, cache flag,
// client report, explain) so results can be compared byte for byte:
// the fleet invariant is that everything left — status, net key, ARD,
// repeater solution — is identical no matter which member answered.
func canonicalResult(t *testing.T, r Result) []byte {
	t.Helper()
	r.ID = ""
	r.Cached = false
	r.Client = nil
	r.Explain = nil
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

// mustSubmit submits one job and fails the test on any rejection or
// per-job failure — the "zero 5xx" half of the acceptance bar.
func mustSubmit(t *testing.T, d *Daemon, req *Request) *Response {
	t.Helper()
	resp, serr := d.Submit(context.Background(), req)
	if serr != nil {
		t.Fatalf("submit rejected: HTTP %d %s: %s", serr.Status, serr.Code, serr.Msg)
	}
	for _, r := range resp.Results {
		if r.Status != StatusOK {
			t.Fatalf("job %s failed: %s: %s", r.ID, r.Code, r.Error)
		}
	}
	return resp
}

// TestFleetConvergesAndAgreesOnRouting: three daemons seeded in a ring
// gossip to full membership, and every member derives the same ring —
// the property single-hop routing (daemons and clients alike) rests on.
func TestFleetConvergesAndAgreesOnRouting(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	f.converge(30)
	for seed := int64(1); seed <= 8; seed++ {
		key, err := netio.ContentHash(testNetFile(t, seed, 6))
		if err != nil {
			t.Fatal(err)
		}
		want := f.ownerIndex(0, key)
		for i := 1; i < len(f.nodes); i++ {
			if got := f.ownerIndex(i, key); got != want {
				t.Fatalf("key %s: node 0 routes to %d, node %d routes to %d", key, want, i, got)
			}
		}
	}
}

// TestFleetShardCacheServesAcrossPeers: a net solved through one
// non-owner member replicates to its home peer, and a later submission
// of the same net to a *different* non-owner member is served from the
// owner's shard in one hop — cached, provenance-stamped, and
// byte-identical to both the original solve and a clusterless daemon.
func TestFleetShardCacheServesAcrossPeers(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	f.converge(30)

	net := testNetFile(t, 11, 6)
	netKey, err := netio.ContentHash(net)
	if err != nil {
		t.Fatal(err)
	}
	owner := f.ownerIndex(0, netKey)
	others := make([]int, 0, 2)
	for i := range f.ds {
		if i != owner {
			others = append(others, i)
		}
	}
	job := Job{Mode: "both", Net: net}
	req := &Request{Version: SchemaVersion, Jobs: []Job{job}, Explain: true}

	// Reference answer from a clusterless daemon.
	single := newTestDaemon(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 8, Reg: obs.New()})
	ref := canonicalResult(t, mustSubmit(t, single, req).Results[0])

	// Solve through the first non-owner: a fresh compute, replicated to
	// the owner's shard before Submit returns.
	first := mustSubmit(t, f.ds[others[0]], req).Results[0]
	if first.Cached {
		t.Fatal("first submission cannot be a cache hit")
	}
	if got := canonicalResult(t, first); string(got) != string(ref) {
		t.Fatalf("fleet result differs from single-node result:\nfleet:  %s\nsingle: %s", got, ref)
	}
	if _, ok := f.ds[owner].cache.Get(job.cacheKey(netKey)); !ok {
		t.Fatalf("solve did not replicate to home peer %d's shard", owner)
	}

	// Same net through the other non-owner: its local cache is cold, so
	// the hit must come from the owner's shard in one hop.
	second := mustSubmit(t, f.ds[others[1]], req).Results[0]
	if !second.Cached {
		t.Fatal("second submission via another member should hit the shard cache")
	}
	if second.Explain == nil || second.Explain.ServedBy != string(fleetID(owner)) {
		t.Fatalf("explain should credit the home peer %q, got %+v", fleetID(owner), second.Explain)
	}
	if got := f.regs[others[1]].Counter("cluster/shard_get_remote_hits").Value(); got != 1 {
		t.Fatalf("shard_get_remote_hits = %d, want 1", got)
	}
	if got := canonicalResult(t, second); string(got) != string(ref) {
		t.Fatalf("shard-cache hit differs from single-node result:\nfleet:  %s\nsingle: %s", got, ref)
	}
}

// TestFleetStealsWorkInsteadOf429: a member whose queue is saturated
// forwards the overflow batch to the least-loaded ready peer and
// returns its answer — the client sees a 200 where a lone daemon would
// send 429 — with provenance on both sides' explain reports.
func TestFleetStealsWorkInsteadOf429(t *testing.T) {
	f := newTestFleet(t, 3, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Workers, cfg.QueueDepth = 1, 1
		}
	})
	f.converge(30)

	// Saturate node-0: one job on the worker, one in the only queue slot.
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	f.ds[0].execHook = func(ctx context.Context, tk *task) Result {
		started <- struct{}{}
		<-release
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for _, id := range []string{"busy", "queued"} {
		go func(id string) {
			defer wg.Done()
			mustSubmit(t, f.ds[0], oneJobRequest(Job{ID: id, Mode: "ard", Net: testNetFile(t, 31, 6)}))
		}(id)
		if id == "busy" {
			<-started
		}
	}
	waitFor(t, func() bool {
		f.ds[0].mu.Lock()
		defer f.ds[0].mu.Unlock()
		return f.ds[0].free == 0
	})
	defer func() {
		close(release)
		wg.Wait()
	}()

	// The next batch cannot be admitted locally: it must come back 200
	// via a peer, not 429.
	net := testNetFile(t, 32, 6)
	resp := mustSubmit(t, f.ds[0], &Request{Version: SchemaVersion,
		Jobs: []Job{{ID: "stolen", Mode: "both", Net: net}}, Explain: true})
	res := resp.Results[0]
	if res.Explain == nil {
		t.Fatal("missing explain report on stolen job")
	}
	if res.Explain.ForwardedFrom != string(fleetID(0)) {
		t.Fatalf("executor's explain should name the forwarder: got %q", res.Explain.ForwardedFrom)
	}
	if sb := res.Explain.ServedBy; sb != string(fleetID(1)) && sb != string(fleetID(2)) {
		t.Fatalf("stolen job served by %q, want a peer of node-0", sb)
	}
	if got := f.regs[0].Counter("svc/jobs_forwarded").Value(); got != 1 {
		t.Fatalf("svc/jobs_forwarded = %d, want 1", got)
	}
	if got := f.regs[0].Counter("cluster/forwards_out").Value(); got != 1 {
		t.Fatalf("cluster/forwards_out = %d, want 1", got)
	}
	if got := f.regs[0].Counter("svc/jobs_rejected").Value(); got != 0 {
		t.Fatalf("svc/jobs_rejected = %d, want 0 — stealing must replace the 429", got)
	}
	// The forwarder's own job table retires the job as forwarded, with
	// the executing peer on record.
	_, recent := f.ds[0].table.List()
	var fwd *Explain
	for i := range recent {
		if recent[i].Label == "stolen" {
			fwd = &recent[i]
		}
	}
	if fwd == nil || fwd.Outcome != OutcomeForwarded {
		t.Fatalf("forwarder's table should retire the job as %q, got %+v", OutcomeForwarded, fwd)
	}
	if fwd.ServedBy != res.Explain.ServedBy {
		t.Fatalf("forwarder records peer %q, executor says %q", fwd.ServedBy, res.Explain.ServedBy)
	}
}

// TestFleetSurvivesPeerDeathAndPartition is the chaos half of the
// acceptance bar: kill a member mid-flight, then partition the two
// survivors — at every stage every submission to a live member
// succeeds (zero rejections, zero failed jobs) and the answers stay
// byte-identical to a clusterless daemon's. Afterwards the healed
// survivors re-converge on their own.
func TestFleetSurvivesPeerDeathAndPartition(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	f.converge(30)

	const jobs = 6
	reqFor := func(i int) *Request {
		return oneJobRequest(Job{ID: fmt.Sprintf("job-%d", i), Mode: "both", Net: testNetFile(t, int64(21+i), 6)})
	}
	single := newTestDaemon(t, Config{Workers: 2, QueueDepth: 8, CacheSize: 16, Reg: obs.New()})
	refs := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		refs[i] = string(canonicalResult(t, mustSubmit(t, single, reqFor(i)).Results[0]))
	}

	check := func(stage string, members ...int) {
		t.Helper()
		for i := 0; i < jobs; i++ {
			d := f.ds[members[i%len(members)]]
			got := canonicalResult(t, mustSubmit(t, d, reqFor(i)).Results[0])
			if string(got) != refs[i] {
				t.Fatalf("%s: job %d differs from single-node answer:\nfleet:  %s\nsingle: %s",
					stage, i, got, refs[i])
			}
		}
	}

	// Healthy fleet: round-robin across all members.
	check("healthy fleet", 0, 1, 2)

	// Kill node-2 and submit IMMEDIATELY — survivors still believe it is
	// alive and route shard traffic at it; every remote error must
	// degrade to a local solve, never to a failure.
	f.tr.Kill(fleetID(2))
	check("peer just died", 0, 1)

	// Let gossip notice: the dead peer leaves both views and the ring.
	f.converge(40, 0, 1)
	for i := 0; i < jobs; i++ {
		key, err := netio.ContentHash(reqFor(i).Jobs[0].Net)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []int{0, 1} {
			if owner := f.ownerIndex(m, key); owner == 2 {
				t.Fatalf("dead peer still owns key %s on node %d's ring", key, m)
			}
		}
	}
	check("peer evicted", 0, 1)

	// Partition the survivors from each other: with no third member to
	// relay heartbeats, each eventually runs solo — and keeps answering.
	f.tr.Partition(fleetID(0), fleetID(1))
	for r := 0; r < 8; r++ {
		f.tick(0, 1)
	}
	check("survivors partitioned", 0, 1)

	// Heal: the history address book lets the halves find each other
	// again without any reseeding.
	f.tr.Heal(fleetID(0), fleetID(1))
	f.converge(40, 0, 1)
	check("partition healed", 0, 1)
}
