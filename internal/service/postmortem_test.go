package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"msrnet/internal/faultinject"
	"msrnet/internal/obs"
	"msrnet/internal/obs/recorder"
	"msrnet/internal/obs/reqctx"
)

// bundleDirs lists the postmortem bundles under dir.
func bundleDirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "postmortem-") {
			names = append(names, dir+"/"+e.Name())
		}
	}
	return names
}

// TestWorkerPanicWritesPostmortem: a fault-injected worker panic is
// recovered, fails the job with internal, AND triggers a postmortem
// bundle that msrnetdebug's loader and renderer accept end to end.
func TestWorkerPanicWritesPostmortem(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	reg.EnableRuntime()
	inj := faultinject.New(1, reg)
	if err := inj.Configure("svc/worker:panic:1"); err != nil {
		t.Fatal(err)
	}
	rec := recorder.New(recorder.Config{
		Reg: reg, Dir: dir, Interval: 10 * time.Millisecond, Logger: quietLogger(),
		Info: map[string]string{"binary": "test"},
	})
	rec.Start()
	defer rec.Stop()
	d := newTestDaemon(t, Config{Workers: 1, Reg: reg, Faults: inj, Recorder: rec})

	ctx := reqctx.WithTraceID(context.Background(), "trace-panic-1")
	resp, serr := d.Submit(ctx, oneJobRequest(Job{ID: "boom", Mode: "ard", Net: testNetFile(t, 1, 6)}))
	if serr != nil {
		t.Fatalf("submit rejected: %v", serr)
	}
	if resp.Results[0].Status != StatusError || resp.Results[0].Code != ErrInternal {
		t.Fatalf("panicked job result: %+v", resp.Results[0])
	}

	dirs := bundleDirs(t, dir)
	if len(dirs) != 1 {
		t.Fatalf("found %d bundles, want exactly 1 (cooldown should debounce)", len(dirs))
	}
	b, err := recorder.LoadBundle(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Trigger.Reason != recorder.ReasonPanic {
		t.Fatalf("trigger reason %q, want %q", b.Manifest.Trigger.Reason, recorder.ReasonPanic)
	}
	if !strings.Contains(b.Manifest.Trigger.Detail, "j1") {
		t.Fatalf("trigger detail %q does not name the job", b.Manifest.Trigger.Detail)
	}
	// The capture happens inside the recover, while the job is still in
	// flight: the bundle's active list carries it with its trace id.
	var inFlight bool
	for _, j := range b.Jobs.Active {
		if j.JobID == "j1" && j.TraceID == "trace-panic-1" {
			inFlight = true
		}
	}
	if !inFlight {
		t.Fatalf("panicked job missing from bundle's in-flight jobs: %+v", b.Jobs.Active)
	}
	var buf bytes.Buffer
	if err := recorder.WriteReport(&buf, b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "worker_panic") {
		t.Fatalf("report does not mention the trigger:\n%s", buf.String())
	}

	// A second panic inside the cooldown does not write a second bundle.
	if _, serr := d.Submit(ctx, oneJobRequest(Job{ID: "boom2", Mode: "ard", Net: testNetFile(t, 2, 6)})); serr != nil {
		t.Fatalf("second submit rejected: %v", serr)
	}
	if got := len(bundleDirs(t, dir)); got != 1 {
		t.Fatalf("panic storm wrote %d bundles, want 1 (cooldown)", got)
	}
}

// TestSLOFastBurnWritesPostmortem: a synthetic error burst trips an
// error_rate burn rule and the recorder writes a bundle naming it.
func TestSLOFastBurnWritesPostmortem(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	rules, err := recorder.ParseRules("err-fast:error_rate:0.5:200ms")
	if err != nil {
		t.Fatal(err)
	}
	rec := recorder.New(recorder.Config{
		Reg: reg, Dir: dir, Rules: rules, Interval: 20 * time.Millisecond, Logger: quietLogger(),
	})
	rec.Start()
	defer rec.Stop()
	d := newTestDaemon(t, Config{Workers: 2, Reg: reg, Recorder: rec})
	d.execHook = func(ctx context.Context, tk *task) Result {
		return d.failResult(tk, ErrInternal, "synthetic burn")
	}

	// Keep the failures flowing until the windowed rate covers the rule
	// window and the rule fires.
	net := testNetFile(t, 3, 6)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d.Submit(context.Background(), oneJobRequest(Job{ID: "burn", Mode: "msri", Net: net}))
			time.Sleep(5 * time.Millisecond)
		}
	}()
	// The manifest is the last file a capture writes; waiting for it
	// avoids loading a bundle mid-write.
	waitFor(t, func() bool {
		for _, bd := range bundleDirs(t, dir) {
			if _, err := os.Stat(bd + "/manifest.json"); err == nil {
				return true
			}
		}
		return false
	})
	close(stop)
	wg.Wait()

	b, err := recorder.LoadBundle(bundleDirs(t, dir)[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Trigger.Reason != recorder.ReasonSLOBurn {
		t.Fatalf("trigger reason %q, want %q", b.Manifest.Trigger.Reason, recorder.ReasonSLOBurn)
	}
	if !strings.Contains(b.Manifest.Trigger.Detail, "err-fast") {
		t.Fatalf("trigger detail %q does not name the rule", b.Manifest.Trigger.Detail)
	}
	var buf bytes.Buffer
	if err := recorder.WriteReport(&buf, b, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRejectedJobsEnterDoneRing: a queue-saturation 429 retires the
// rejected jobs into the explain done-ring with outcome=rejected and
// the request's trace id, instead of erasing them.
func TestRejectedJobsEnterDoneRing(t *testing.T) {
	reg := obs.New()
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1, Reg: reg})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	d.execHook = func(ctx context.Context, tk *task) Result {
		started <- struct{}{}
		<-release
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey}
	}
	defer close(release)

	net := testNetFile(t, 4, 6)
	go d.Submit(context.Background(), oneJobRequest(Job{ID: "busy", Mode: "ard", Net: net}))
	<-started
	go d.Submit(context.Background(), oneJobRequest(Job{ID: "queued", Mode: "ard", Net: testNetFile(t, 5, 6)}))
	waitFor(t, func() bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.free == 0
	})

	ctx := reqctx.WithTraceID(context.Background(), "trace-reject-1")
	_, serr := d.Submit(ctx, oneJobRequest(Job{ID: "victim", Mode: "ard", Net: testNetFile(t, 6, 6)}))
	if serr == nil || serr.Code != ErrQueueFull {
		t.Fatalf("want queue_full rejection, got %v", serr)
	}

	_, recent := d.table.List()
	var found *Explain
	for i := range recent {
		if recent[i].TraceID == "trace-reject-1" {
			found = &recent[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("rejected job missing from done-ring: %+v", recent)
	}
	if found.State != JobDone || found.Outcome != OutcomeRejected || found.Code != ErrQueueFull {
		t.Fatalf("rejected report = %+v", found)
	}
	if found.Label != "victim" {
		t.Fatalf("rejected report label = %q", found.Label)
	}
	// The rejected latency window observed the admission time.
	if q, ok := reg.Snapshot().Quantiles["svc/latency/e2e/rejected"]; !ok || q.Count != 1 {
		t.Fatalf("rejected e2e window not observed: %+v", q)
	}
	// It is also retrievable by trace id via the lookup path /debug/jobs uses.
	if e, ok := d.table.Get("trace-reject-1"); !ok || e.Outcome != OutcomeRejected {
		t.Fatalf("lookup by trace id: %+v %v", e, ok)
	}
}

// TestDebugRecorderAndDumpEndpoints: GET /debug/recorder serves the
// live ring + rule state, POST /debug/dump forces a bundle, and both
// 404 cleanly when no recorder is configured.
func TestDebugRecorderAndDumpEndpoints(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	rules, _ := recorder.ParseRules("slow:p99:e2e/ok:500ms:1m")
	rec := recorder.New(recorder.Config{Reg: reg, Dir: dir, Rules: rules,
		Interval: 10 * time.Millisecond, Logger: quietLogger()})
	rec.Start()
	defer rec.Stop()
	d := newTestDaemon(t, Config{Workers: 1, Reg: reg, Recorder: rec})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	waitFor(t, func() bool { return len(rec.Samples(0)) >= 2 })
	resp, err := http.Get(srv.URL + "/debug/recorder?n=1")
	if err != nil {
		t.Fatal(err)
	}
	var state recorder.State
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(state.Samples) != 1 || len(state.Rules) != 1 || state.Rules[0].Rule.Name != "slow" {
		t.Fatalf("recorder state: samples=%d rules=%+v", len(state.Samples), state.Rules)
	}

	if resp, _ := http.Get(srv.URL + "/debug/recorder?n=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/debug/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dump map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dump["bundle"] == "" {
		t.Fatalf("dump: status %d body %v", resp.StatusCode, dump)
	}
	if _, err := recorder.LoadBundle(dump["bundle"]); err != nil {
		t.Fatalf("dump wrote an unloadable bundle: %v", err)
	}

	// Without a recorder both endpoints 404.
	bare := newTestDaemon(t, Config{Workers: 1, Reg: obs.New()})
	bareSrv := httptest.NewServer(bare.Handler())
	defer bareSrv.Close()
	if resp, _ := http.Get(bareSrv.URL + "/debug/recorder"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bare /debug/recorder: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Post(bareSrv.URL+"/debug/dump", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bare /debug/dump: status %d, want 404", resp.StatusCode)
	}
}
