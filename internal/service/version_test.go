package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"msrnet/internal/buildinfo"
	"msrnet/internal/obs"
)

// TestVersionEndpoint: GET /version serves the binary's embedded build
// identity (msrnet-build/v1) — what a fleet inventory polls to confirm
// every member runs the same build.
func TestVersionEndpoint(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, Reg: obs.New()})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /version: HTTP %d", resp.StatusCode)
	}
	var info buildinfo.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Schema != buildinfo.Schema {
		t.Fatalf("schema %q, want %q", info.Schema, buildinfo.Schema)
	}
	if info.GoVersion == "" {
		t.Fatal("version body missing the toolchain stamp")
	}
	if info != buildinfo.Get() {
		t.Fatalf("served identity %+v differs from the process identity %+v", info, buildinfo.Get())
	}
}
