package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"msrnet/internal/ard"
	"msrnet/internal/core"
	"msrnet/internal/netio"
	"msrnet/internal/obs"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// singleShot mirrors the one-shot CLI path for a "both" job: the
// ardcalc computation (ard.Compute on the unoptimized net) plus the
// msri computation (core.Optimize, min-ARD choice, EncodeAssignment).
// It is written against the libraries directly — independently of
// Daemon.exec — so the e2e test checks the daemon against the same
// ground truth the CLIs print.
func singleShot(t *testing.T, f netio.NetFile) Result {
	t.Helper()
	tr, tech, err := netio.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	netKey, err := netio.ContentHash(f)
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	name := func(tr *topo.Tree, id int) string {
		if id < 0 {
			return ""
		}
		return tr.Node(id).Term.Name
	}
	a := ard.Compute(rctree.NewNet(rt, tech, rctree.Assignment{}), ard.Options{})
	out, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	chosen, err := out.Suite.MinARD()
	if err != nil {
		t.Fatal(err)
	}
	opt := &OptResult{
		Chosen: SuitePoint{Cost: chosen.Cost, ARD: chosen.ARD, Repeaters: chosen.Repeaters()},
		Assign: netio.EncodeAssignment(chosen.Cost, chosen.ARD, chosen.Assignment()),
		Stats:  out.Stats,
	}
	for _, s := range out.Suite {
		opt.Suite = append(opt.Suite, SuitePoint{Cost: s.Cost, ARD: s.ARD, Repeaters: s.Repeaters()})
	}
	return Result{
		Status: StatusOK,
		NetKey: netKey,
		ARD:    &ARDResult{ARD: a.ARD, CritSrc: name(tr, a.CritSrc), CritSink: name(tr, a.CritSink)},
		Opt:    opt,
	}
}

// marshalResult compares Results as the client sees them: JSON bytes.
func marshalResult(t *testing.T, r Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEndToEnd drives msrnetd's serving stack over a real TCP listener:
// a concurrent batch of 8 distinct nets, byte-for-byte agreement with
// the single-shot CLI path, cache hits for repeated nets (visible in
// the /metrics exposition), graceful shutdown, and no goroutine leaks.
func TestEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := obs.New()
	d := New(Config{
		Workers:    4,
		QueueDepth: 32,
		JobTimeout: 2 * time.Minute,
		CacheSize:  64,
		Reg:        reg,
		Logger:     quietLogger(),
	})
	srv, err := Serve("127.0.0.1:0", d, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr().String()

	const nNets = 8
	nets := make([]netio.NetFile, nNets)
	expected := make([]Result, nNets)
	for i := range nets {
		nets[i] = testNetFile(t, int64(100+i), 6+i%3)
		expected[i] = singleShot(t, nets[i])
		expected[i].ID = fmt.Sprintf("net-%d", i)
	}

	client := &http.Client{Transport: &http.Transport{}}
	post := func(req *Request) (*Response, int, []byte) {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(hr.Body); err != nil {
			t.Fatal(err)
		}
		if hr.StatusCode != http.StatusOK {
			return nil, hr.StatusCode, buf.Bytes()
		}
		var resp Response
		if err := json.Unmarshal(buf.Bytes(), &resp); err != nil {
			t.Fatalf("response decode: %v: %s", err, buf.Bytes())
		}
		return &resp, hr.StatusCode, buf.Bytes()
	}

	// Phase 1: one batch of all 8 nets, computed concurrently by the
	// worker pool. Results must come back in request order and match the
	// single-shot path byte-for-byte.
	batch := &Request{Version: SchemaVersion}
	for i := range nets {
		batch.Jobs = append(batch.Jobs, Job{ID: fmt.Sprintf("net-%d", i), Mode: "both", Net: nets[i]})
	}
	resp, status, raw := post(batch)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	if resp.Version != SchemaVersion || len(resp.Results) != nNets {
		t.Fatalf("bad response envelope: version %q, %d results", resp.Version, len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Cached {
			t.Errorf("net-%d: fresh net reported cached", i)
		}
		got := marshalResult(t, r)
		want := marshalResult(t, expected[i])
		if !bytes.Equal(got, want) {
			t.Errorf("net-%d: daemon result differs from single-shot:\n got %s\nwant %s", i, got, want)
		}
	}

	// Phase 2: re-submit every net concurrently from 8 clients. All are
	// repeats, so every result must be a cache hit and still match.
	var wg sync.WaitGroup
	for i := 0; i < nNets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, status, raw := post(oneJobRequest(Job{ID: fmt.Sprintf("net-%d", i), Mode: "both", Net: nets[i]}))
			if status != http.StatusOK {
				t.Errorf("repeat net-%d: status %d: %s", i, status, raw)
				return
			}
			r := resp.Results[0]
			if !r.Cached {
				t.Errorf("repeat net-%d: not served from cache", i)
			}
			want := expected[i]
			want.Cached = true
			if got, w := marshalResult(t, r), marshalResult(t, want); !bytes.Equal(got, w) {
				t.Errorf("repeat net-%d: cached result differs:\n got %s\nwant %s", i, got, w)
			}
		}(i)
	}
	wg.Wait()

	// The cache hits must be visible in the Prometheus exposition on the
	// same listener.
	hr, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(hr.Body)
	hr.Body.Close()
	hits := promCounter(t, mbuf.String(), "msrnet_svc_cache_hits_total")
	if hits < int64(nNets) {
		t.Fatalf("msrnet_svc_cache_hits_total = %d, want ≥ %d\n%s", hits, nNets, mbuf.String())
	}
	if completed := promCounter(t, mbuf.String(), "msrnet_svc_jobs_completed_total"); completed != 2*nNets {
		t.Fatalf("msrnet_svc_jobs_completed_total = %d, want %d", completed, 2*nNets)
	}
	for _, series := range []string{"msrnet_svc_queue_wait_ms_count", "msrnet_svc_job_ms_count", "msrnet_phase_seconds_total"} {
		if !strings.Contains(mbuf.String(), series) {
			t.Errorf("metrics exposition missing %s", series)
		}
	}

	// Phase 3: graceful shutdown, then check for leaked goroutines.
	client.CloseIdleConnections()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader("{}")); err == nil {
		t.Error("listener still accepting after shutdown")
	}

	waitFor(t, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// promCounter extracts one un-labelled counter value from a Prometheus
// text exposition.
func promCounter(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 10, 64)
			if err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("counter %s not found in exposition:\n%s", name, text)
	return 0
}

// TestShutdownDrainsQueuedJobs: jobs admitted before Close complete
// with real results; submissions after Close are refused.
func TestShutdownDrainsQueuedJobs(t *testing.T) {
	reg := obs.New()
	d := New(Config{Workers: 1, QueueDepth: 8, Reg: reg, Logger: quietLogger()})
	gate := make(chan struct{})
	var once sync.Once
	d.execHook = func(ctx context.Context, tk *task) Result {
		once.Do(func() { <-gate }) // stall only the first job so the rest sit queued
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey}
	}

	net := testNetFile(t, 42, 6)
	const n = 5
	results := make([]*Response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: fmt.Sprintf("q%d", i), Mode: "ard", Net: net}))
			if serr != nil {
				t.Errorf("q%d rejected: %v", i, serr)
				return
			}
			results[i] = resp
		}(i)
	}
	waitFor(t, func() bool {
		return reg.Counter("svc/jobs_submitted").Value() == n
	})

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- d.Close(ctx)
	}()
	close(gate) // let the pool drain

	if err := <-closed; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i, r := range results {
		if r == nil || r.Results[0].Status != StatusOK {
			t.Fatalf("queued job q%d did not complete through the drain: %+v", i, r)
		}
	}

	if _, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "late", Mode: "ard", Net: net})); serr == nil || serr.Code != ErrShuttingDown {
		t.Fatalf("post-close submit: got %v, want %s", serr, ErrShuttingDown)
	}
}
