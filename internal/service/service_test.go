package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/netgen"
	"msrnet/internal/netio"
	"msrnet/internal/obs"
)

func quietLogger() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

func testNetFile(t *testing.T, seed int64, pins int) netio.NetFile {
	t.Helper()
	tr, err := netgen.Generate(seed, netgen.Defaults(pins))
	if err != nil {
		t.Fatal(err)
	}
	return netio.Encode("", tr, buslib.Default())
}

func oneJobRequest(job Job) *Request {
	return &Request{Version: SchemaVersion, Jobs: []Job{job}}
}

// newTestDaemon builds a daemon the test must Close.
func newTestDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	d := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := d.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return d
}

// TestQueueFullRejects fills the single worker and the single queue
// slot, then asserts the next submission is rejected whole with the
// queue_full code and HTTP 429, and that the stalled jobs still finish.
func TestQueueFullRejects(t *testing.T) {
	reg := obs.New()
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1, Reg: reg})
	started := make(chan string, 2)
	release := make(chan struct{})
	d.execHook = func(ctx context.Context, tk *task) Result {
		started <- tk.label
		<-release
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey}
	}

	net := testNetFile(t, 1, 6)
	var wg sync.WaitGroup
	submit := func(id string) {
		defer wg.Done()
		resp, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: id, Mode: "ard", Net: net}))
		if serr != nil {
			t.Errorf("job %s: unexpected rejection: %v", id, serr)
			return
		}
		if resp.Results[0].Status != StatusOK {
			t.Errorf("job %s: status %q", id, resp.Results[0].Status)
		}
	}
	wg.Add(2)
	go submit("busy") // occupies the worker
	<-started
	go submit("queued") // occupies the queue slot
	waitFor(t, func() bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.free == 0
	})

	_, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "rejected", Mode: "ard", Net: net}))
	if serr == nil {
		t.Fatal("expected queue_full rejection")
	}
	if serr.Status != http.StatusTooManyRequests || serr.Code != ErrQueueFull {
		t.Fatalf("got status %d code %q, want 429 %q", serr.Status, serr.Code, ErrQueueFull)
	}
	if got := reg.Counter("svc/jobs_rejected").Value(); got != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", got)
	}

	close(release)
	wg.Wait()
}

// TestBatchAdmissionIsAtomic: a batch larger than the remaining queue
// space is rejected without enqueueing any of its jobs.
func TestBatchAdmissionIsAtomic(t *testing.T) {
	reg := obs.New()
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 2, Reg: reg})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	d.execHook = func(ctx context.Context, tk *task) Result {
		started <- struct{}{}
		<-release
		return Result{ID: tk.label, Status: StatusOK}
	}
	defer close(release)

	net := testNetFile(t, 2, 6)
	go d.Submit(context.Background(), oneJobRequest(Job{ID: "busy", Mode: "ard", Net: net}))
	<-started

	req := &Request{Version: SchemaVersion, Jobs: []Job{
		{ID: "a", Mode: "ard", Net: net, Options: JobOptions{IncludeSelf: true}},
		{ID: "b", Mode: "ard", Net: testNetFile(t, 3, 6)},
		{ID: "c", Mode: "ard", Net: testNetFile(t, 4, 6)},
	}}
	_, serr := d.Submit(context.Background(), req)
	if serr == nil || serr.Code != ErrQueueFull {
		t.Fatalf("want queue_full for 3-job batch into 2 slots, got %v", serr)
	}
	d.mu.Lock()
	free := d.free
	d.mu.Unlock()
	if free != 2 {
		t.Fatalf("rejected batch leaked queue slots: free = %d, want 2", free)
	}
}

// TestJobDeadlineExceeded runs a job that outlives its deadline and
// checks the structured per-job error plus the counter.
func TestJobDeadlineExceeded(t *testing.T) {
	reg := obs.New()
	d := newTestDaemon(t, Config{Workers: 1, JobTimeout: 30 * time.Millisecond, Reg: reg})
	d.execHook = func(ctx context.Context, tk *task) Result {
		<-ctx.Done() // simulate a computation that outlives its deadline
		return Result{ID: tk.label, Status: StatusOK}
	}
	resp, serr := d.Submit(context.Background(),
		oneJobRequest(Job{ID: "slow", Mode: "msri", Net: testNetFile(t, 5, 6)}))
	if serr != nil {
		t.Fatalf("whole-request rejection: %v", serr)
	}
	r := resp.Results[0]
	if r.Status != StatusError || r.Code != ErrDeadlineExceeded {
		t.Fatalf("got status %q code %q, want error %q", r.Status, r.Code, ErrDeadlineExceeded)
	}
	if got := reg.Counter("svc/jobs_deadline_exceeded").Value(); got != 1 {
		t.Fatalf("deadline counter = %d, want 1", got)
	}
	if got := reg.Counter("svc/jobs_failed").Value(); got != 1 {
		t.Fatalf("failed counter = %d, want 1", got)
	}
}

// TestMalformedNetStructured400 exercises the HTTP surface: a net with
// an out-of-range edge must produce a structured 400 naming the job,
// not a 500 or a queued failure.
func TestMalformedNetStructured400(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, Reg: obs.New()})
	h := d.Handler()

	bad := testNetFile(t, 6, 6)
	bad.Edges = append(bad.Edges, netio.EdgeJSON{A: 0, B: 10_000, Length: 1})
	body, _ := json.Marshal(oneJobRequest(Job{ID: "mangled", Mode: "ard", Net: bad}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", rec.Code, rec.Body)
	}
	var eb ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body is not structured JSON: %v: %s", err, rec.Body)
	}
	if eb.Code != ErrBadRequest || !strings.Contains(eb.Error, "mangled") {
		t.Fatalf("error body %+v must carry code %q and the job id", eb, ErrBadRequest)
	}

	for name, raw := range map[string]string{
		"bad version": `{"version":"msrnet-job/v0","jobs":[{"mode":"ard"}]}`,
		"no jobs":     `{"version":"msrnet-job/v1","jobs":[]}`,
		"bad mode":    `{"version":"msrnet-job/v1","jobs":[{"mode":"tea"}]}`,
		"not json":    `{"version":`,
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(raw)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: status %d, want 405", rec.Code)
	}
}

// TestPanicIsolation: a panicking job yields a structured internal
// error, increments svc/panics_recovered, and leaves the daemon fully
// serviceable for the next job.
func TestPanicIsolation(t *testing.T) {
	reg := obs.New()
	d := newTestDaemon(t, Config{Workers: 1, Reg: reg})
	boom := true
	d.execHook = func(ctx context.Context, tk *task) Result {
		if boom {
			boom = false
			panic("synthetic failure in job body")
		}
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey}
	}

	net := testNetFile(t, 7, 6)
	resp, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "explodes", Mode: "msri", Net: net}))
	if serr != nil {
		t.Fatalf("whole-request rejection: %v", serr)
	}
	r := resp.Results[0]
	if r.Status != StatusError || r.Code != ErrInternal || !strings.Contains(r.Error, "synthetic failure") {
		t.Fatalf("panic result %+v, want internal error carrying the panic value", r)
	}
	if got := reg.Counter("svc/panics_recovered").Value(); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}

	resp, serr = d.Submit(context.Background(), oneJobRequest(Job{ID: "after", Mode: "msri", Net: net}))
	if serr != nil || resp.Results[0].Status != StatusOK {
		t.Fatalf("daemon not serviceable after panic: %v %+v", serr, resp)
	}
}

// TestCacheHitAndEviction checks the LRU: a repeated job is served from
// cache byte-for-byte, and capacity overflow evicts the oldest entry.
func TestCacheHitAndEviction(t *testing.T) {
	reg := obs.New()
	d := newTestDaemon(t, Config{Workers: 2, CacheSize: 1, Reg: reg})

	netA := testNetFile(t, 8, 6)
	netB := testNetFile(t, 9, 6)
	job := func(id string, net netio.NetFile) *Request {
		return oneJobRequest(Job{ID: id, Mode: "both", Net: net})
	}

	respA1, serr := d.Submit(context.Background(), job("a1", netA))
	if serr != nil {
		t.Fatal(serr)
	}
	if respA1.Results[0].Cached {
		t.Fatal("first run must not be cached")
	}
	respA2, serr := d.Submit(context.Background(), job("a2", netA))
	if serr != nil {
		t.Fatal(serr)
	}
	if !respA2.Results[0].Cached {
		t.Fatal("repeat of an identical net must be served from cache")
	}
	// Identical payload up to the per-request ID/Cached stamps.
	want, got := respA1.Results[0], respA2.Results[0]
	want.ID, want.Cached = "", false
	got.ID, got.Cached = "", false
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("cached result differs from computed result:\n%s\nvs\n%s", wb, gb)
	}
	if hits := reg.Counter("svc/cache_hits").Value(); hits != 1 {
		t.Fatalf("cache_hits = %d, want 1", hits)
	}

	if _, serr = d.Submit(context.Background(), job("b1", netB)); serr != nil {
		t.Fatal(serr)
	}
	if ev := reg.Counter("svc/cache_evictions").Value(); ev != 1 {
		t.Fatalf("cache_evictions = %d, want 1 (capacity 1)", ev)
	}
	respA3, serr := d.Submit(context.Background(), job("a3", netA))
	if serr != nil {
		t.Fatal(serr)
	}
	if respA3.Results[0].Cached {
		t.Fatal("evicted entry must be recomputed")
	}
}

// TestCacheKeyDistinguishesOptions: same net, different options — no
// false sharing.
func TestCacheKeyDistinguishesOptions(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, CacheSize: 16, Reg: obs.New()})
	net := testNetFile(t, 10, 6)

	resp, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "r", Mode: "msri", Net: net}))
	if serr != nil {
		t.Fatal(serr)
	}
	if resp.Results[0].Cached {
		t.Fatal("first run cached?")
	}
	resp, serr = d.Submit(context.Background(), oneJobRequest(
		Job{ID: "s", Mode: "msri", Net: net, Options: JobOptions{Optimize: "sizing"}}))
	if serr != nil {
		t.Fatal(serr)
	}
	if resp.Results[0].Cached {
		t.Fatal("different options must not hit the cache")
	}
	// Defaults normalize: "" and explicit "repeaters"/"divide" collide.
	resp, serr = d.Submit(context.Background(), oneJobRequest(
		Job{ID: "rr", Mode: "msri", Net: net, Options: JobOptions{Optimize: "repeaters", Pruner: "divide"}}))
	if serr != nil {
		t.Fatal(serr)
	}
	if !resp.Results[0].Cached {
		t.Fatal("explicit defaults must share the cache entry with implicit defaults")
	}
}

// TestOptionsCopiesAreGoroutineSafe verifies the contract the daemon's
// workers rely on (and that msri -parallel documents): copies of one
// core.Options value, sharing a Recorder and a WireWidths slice, can
// drive concurrent Optimize runs and reproduce the serial results
// exactly. Run under -race this also proves the copies introduce no
// write sharing.
func TestOptionsCopiesAreGoroutineSafe(t *testing.T) {
	reg := obs.New()
	base := core.Options{Repeaters: true, Parallel: true, WireWidths: nil, Obs: reg, Pruner: core.PruneDivide}

	type outcome struct {
		cost, ard float64
		stats     core.Stats
	}
	runOne := func(seed int64, opt core.Options) outcome {
		tr, err := netgen.Generate(seed, netgen.Defaults(6))
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Optimize(tr.RootAt(tr.Terminals()[0]), buslib.Default(), opt)
		if err != nil {
			t.Fatal(err)
		}
		best, err := res.Suite.MinARD()
		if err != nil {
			t.Fatal(err)
		}
		return outcome{cost: best.Cost, ard: best.ARD, stats: res.Stats}
	}

	serial := make([]outcome, 8)
	for i := range serial {
		serial[i] = runOne(int64(i+1), base)
	}
	parallel := make([]outcome, 8)
	var wg sync.WaitGroup
	for i := range parallel {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt := base // the copy each worker makes
			parallel[i] = runOne(int64(i+1), opt)
		}(i)
	}
	wg.Wait()
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("net %d: concurrent run diverged: %+v vs %+v", i+1, serial[i], parallel[i])
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
