package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"msrnet/internal/jobstore"
	"msrnet/internal/netio"
	"msrnet/internal/obs/reqctx"
)

// This file is the daemon side of internal/jobstore (DESIGN.md §14):
// the job path's durability hooks (accepted before dispatch, result
// before delivery, ack after delivery) and startup recovery — replayed
// pending jobs re-enter the scheduler, replayed results are served from
// GET /v1/recovered byte-identical to the original run.

// RecoveredSchema identifies the GET /v1/recovered body.
const RecoveredSchema = "msrnet-recovered/v1"

// walAccept durably appends one accepted record per task (one group
// commit for the whole batch) and stamps each task with its WAL UID.
// Tasks never reach a worker before their accepted record is on disk,
// so every result record has a durable parent.
func (d *Daemon) walAccept(ctx context.Context, pending []*task) error {
	if d.cfg.Store == nil {
		return nil
	}
	recs := make([]*jobstore.Record, len(pending))
	for i, t := range pending {
		job, err := json.Marshal(t.job)
		if err != nil {
			return fmt.Errorf("encode job %s: %w", t.label, err)
		}
		recs[i] = &jobstore.Record{
			Type: jobstore.TypeAccepted, Tenant: t.tn.cfg.Name, Label: t.label,
			TraceID: t.traceID, Key: t.key, NetKey: t.netKey, Job: job,
		}
	}
	if err := d.cfg.Store.Append(ctx, recs...); err != nil {
		return err
	}
	for i, t := range pending {
		t.walUID = recs[i].UID
	}
	return nil
}

// walResult persists a finished task's outcome. Successes are stored
// with their degradation flag — replay re-queues degraded results for
// an exact re-solve instead of serving the ε-relaxed answer forever.
// Terminal (non-retryable) failures are stored so replay does not burn
// a worker re-proving them; retryable failures are not, so replay
// retries them with a fresh budget. A failed append degrades durability
// (the job would replay as pending and re-solve), never the response.
func (d *Daemon) walResult(t *task) {
	if d.cfg.Store == nil || t.walUID == "" {
		return
	}
	if t.res.Status != StatusOK && t.res.Retryable {
		return
	}
	stored := t.res
	stored.Cached = false
	stored.Explain = nil
	body, err := json.Marshal(stored)
	if err != nil {
		d.log.Warn("wal: encode result failed", "job", t.jid, "uid", t.walUID, "err", err)
		return
	}
	rec := &jobstore.Record{Type: jobstore.TypeResult, UID: t.walUID,
		Result: body, Degraded: t.res.Degraded}
	// The job context may already be expired (deadline jobs); the WAL
	// append must still land — but keep the context's identities (trace
	// ID, span parent) so the append's spans join the job's trace.
	if err := d.cfg.Store.Append(context.WithoutCancel(t.ctx), rec); err != nil {
		d.log.Warn("wal: result append failed; job will replay as pending", "job", t.jid, "uid", t.walUID, "err", err)
	}
}

// walAck acknowledges delivered tasks: one group commit marking every
// durable job of the batch as handed to the client, which lets the next
// compaction drop them.
func (d *Daemon) walAck(ctx context.Context, pending []*task) {
	if d.cfg.Store == nil {
		return
	}
	var recs []*jobstore.Record
	for _, t := range pending {
		if t.walUID != "" {
			recs = append(recs, &jobstore.Record{Type: jobstore.TypeAck, UID: t.walUID})
		}
	}
	if len(recs) == 0 {
		return
	}
	if err := d.cfg.Store.Append(ctx, recs...); err != nil {
		d.log.Warn("wal: ack append failed; jobs will replay as done", "jobs", len(recs), "err", err)
	}
}

// RecoveredJob is one WAL-replayed job's state on GET /v1/recovered.
type RecoveredJob struct {
	// UID is the durable WAL identity ("w<seq>") — stable across
	// restarts, unlike job IDs.
	UID     string `json:"uid"`
	Tenant  string `json:"tenant,omitempty"`
	Label   string `json:"label"`
	TraceID string `json:"trace_id,omitempty"`
	NetKey  string `json:"net_key,omitempty"`
	// State is "pending" while the replayed job is queued or solving,
	// "done" once its result is available below.
	State string `json:"state"`
	// Resolved marks an entry whose pre-crash result was degraded and
	// has been re-queued for an exact re-solve (satellite: ε-relaxed
	// answers are never served forever).
	Resolved bool    `json:"degraded_resolve,omitempty"`
	Result   *Result `json:"result,omitempty"`
}

// recoveredBody is the JSON shape of GET /v1/recovered.
type recoveredBody struct {
	Schema    string         `json:"schema"`
	Recovered []RecoveredJob `json:"recovered"`
}

// recoveredTable holds replayed jobs until their results are fetched
// (and thereby acknowledged) via GET /v1/recovered.
type recoveredTable struct {
	mu   sync.Mutex
	jobs map[string]*RecoveredJob
	// order preserves accept order for stable listings.
	order []string
}

func newRecoveredTable() *recoveredTable {
	return &recoveredTable{jobs: map[string]*RecoveredJob{}}
}

func (rt *recoveredTable) add(j *RecoveredJob) {
	rt.mu.Lock()
	if _, dup := rt.jobs[j.UID]; !dup {
		rt.jobs[j.UID] = j
		rt.order = append(rt.order, j.UID)
	}
	rt.mu.Unlock()
}

// complete flips a pending entry to done with its computed result.
func (rt *recoveredTable) complete(uid string, res Result) {
	rt.mu.Lock()
	if j := rt.jobs[uid]; j != nil {
		r := res
		j.State, j.Result = "done", &r
	}
	rt.mu.Unlock()
}

// list returns the entries for one tenant ("" = all), in accept order.
func (rt *recoveredTable) list(tenant string) []RecoveredJob {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := []RecoveredJob{}
	for _, uid := range rt.order {
		j := rt.jobs[uid]
		if j == nil || (tenant != "" && j.Tenant != tenant) {
			continue
		}
		out = append(out, *j)
	}
	return out
}

// takeDone removes and returns the done entries for one tenant ("" =
// all) — the fetch-acknowledge step.
func (rt *recoveredTable) takeDone(tenant string) []*RecoveredJob {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []*RecoveredJob
	keep := rt.order[:0]
	for _, uid := range rt.order {
		j := rt.jobs[uid]
		if j == nil {
			continue
		}
		if j.State == "done" && (tenant == "" || j.Tenant == tenant) {
			out = append(out, j)
			delete(rt.jobs, uid)
			continue
		}
		keep = append(keep, uid)
	}
	rt.order = keep
	return out
}

// Recover feeds a WAL replay back into the daemon: entries with a
// durable exact result are restored as done (served from GET
// /v1/recovered, byte-identical to the original run, and warmed into
// the result cache); pending entries — never solved, or solved only
// degraded — are re-queued through the fair-share scheduler,
// slot-free so a large backlog cannot wedge fresh admissions. It
// returns (requeued, restored). Call it once, after New and before
// serving traffic.
func (d *Daemon) Recover(rep *jobstore.Replay) (requeued, restored int) {
	if rep == nil || len(rep.Entries) == 0 {
		return 0, 0
	}
	var tasks []*task
	for _, e := range rep.Entries {
		tn := d.tenantByName(e.Tenant)
		if !e.Pending() {
			var res Result
			if err := json.Unmarshal(e.Result, &res); err != nil {
				d.log.Warn("wal: stored result undecodable; ignoring entry", "uid", e.UID, "err", err)
				continue
			}
			d.rec.add(&RecoveredJob{UID: e.UID, Tenant: e.Tenant, Label: e.Label,
				TraceID: e.TraceID, NetKey: e.NetKey, State: "done", Result: &res})
			if res.Status == StatusOK && !res.Degraded && e.Key != "" {
				cached := res
				cached.ID = ""
				cached.Explain = nil
				d.cache.Put(e.Key, cached)
			}
			restored++
			continue
		}
		t, err := d.replayTask(e, tn)
		if err != nil {
			// The job was validated at original admission, so this means
			// the WAL entry itself is damaged — surface it as a terminal
			// error result rather than dropping the job silently.
			d.log.Warn("wal: replayed job undecodable", "uid", e.UID, "err", err)
			d.rec.add(&RecoveredJob{UID: e.UID, Tenant: e.Tenant, Label: e.Label,
				TraceID: e.TraceID, NetKey: e.NetKey, State: "done",
				Result: &Result{ID: e.Label, Status: StatusError, Code: ErrBadRequest,
					Error: fmt.Sprintf("replayed job undecodable: %v", err)}})
			continue
		}
		d.rec.add(&RecoveredJob{UID: e.UID, Tenant: e.Tenant, Label: e.Label,
			TraceID: e.TraceID, NetKey: e.NetKey, State: "pending", Resolved: e.Degraded})
		d.table.start(t.explain)
		// Nobody waits on a replayed task's done channel from a request
		// handler; route the completion into the recovered table.
		go func(uid string, t *task) {
			<-t.done
			t.rspan.End()
			d.rec.complete(uid, t.res)
		}(e.UID, t)
		tasks = append(tasks, t)
		requeued++
	}
	d.dispatch(tasks)
	d.cfg.Store.SetLive(int64(len(rep.Entries)))
	if requeued+restored > 0 {
		d.log.Info("wal: recovery complete", "requeued", requeued, "restored", restored,
			"torn", rep.Torn, "torn_tail", rep.TornTail)
	}
	return requeued, restored
}

// replayTask rebuilds a runnable task from a WAL entry, mirroring what
// Submit does for a fresh job.
func (d *Daemon) replayTask(e *jobstore.Entry, tn *tenantState) (*task, error) {
	var job Job
	if err := json.Unmarshal(e.Job, &job); err != nil {
		return nil, fmt.Errorf("decode job: %w", err)
	}
	tr, tech, err := netio.Decode(job.Net)
	if err != nil {
		return nil, fmt.Errorf("decode net: %w", err)
	}
	seq := d.seq.Add(1)
	jid := fmt.Sprintf("j%d", seq)
	t := &task{job: &job, label: e.Label, netKey: e.NetKey, key: e.Key, tr: tr, tech: tech,
		traceID: e.TraceID, jid: jid, seq: seq, tn: tn, walUID: e.UID, replayed: true,
		done: make(chan struct{})}
	t.explain = &Explain{Schema: ExplainSchema, JobID: jid, Seq: seq, Label: e.Label,
		TraceID: e.TraceID, NetKey: e.NetKey, Mode: job.Mode, State: JobQueued,
		Tenant: tn.cfg.Name, Replayed: true}
	ctx := reqctx.WithJobID(context.Background(), jid)
	if e.TraceID != "" {
		ctx = reqctx.WithTraceID(ctx, e.TraceID)
	}
	// Replayed work re-enters the ORIGINAL trace: the replay root span
	// records under the trace ID persisted at admission, so a collector
	// stitching that trace sees the pre-crash spans (if any survived)
	// and the post-crash replay in one tree.
	ctx, rspan := d.cfg.Spans.Start(ctx, "replay")
	rspan.Set("wal_uid", e.UID)
	t.rspan = rspan
	t.ctx, t.cancel = d.jobContext(ctx)
	return t, nil
}

// handleRecovered serves GET /v1/recovered: the tenant's WAL-replayed
// jobs. Fetching is delivery: done results returned here are
// acknowledged in the WAL (compacted away on the next restart) and
// leave the table, unless ?keep=1 asks for a read-only peek.
func (d *Daemon) handleRecovered(w http.ResponseWriter, r *http.Request) {
	ctx := WithAPIKey(r.Context(), r.Header.Get(reqctx.HeaderAPIKey))
	tn, serr := d.tenantFor(ctx)
	if serr != nil {
		writeErrorBody(w, serr.Status, ErrorBody{Version: SchemaVersion, Code: serr.Code, Error: serr.Msg})
		return
	}
	scope := ""
	if d.authRequired {
		scope = tn.cfg.Name
	}
	body := recoveredBody{Schema: RecoveredSchema, Recovered: d.rec.list(scope)}
	if r.URL.Query().Get("keep") != "1" {
		if done := d.rec.takeDone(scope); len(done) > 0 {
			recs := make([]*jobstore.Record, len(done))
			for i, j := range done {
				recs[i] = &jobstore.Record{Type: jobstore.TypeAck, UID: j.UID}
			}
			if err := d.cfg.Store.Append(r.Context(), recs...); err != nil {
				d.log.Warn("wal: recovered-fetch ack failed", "jobs", len(recs), "err", err)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}
