package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"msrnet/internal/validate"
)

// FuzzJobsHandler throws arbitrary bodies at POST /v1/jobs and demands
// the serving contract holds for every one of them: no panic escapes
// the handler, every response is valid JSON, rejections carry a
// structured code, and nothing maps to a bare 5xx (the only 5xx the
// surface emits is a deliberate 503). Seeded with the msrnet-error/v1
// corpus wrapped into job envelopes so each taxonomy trigger is a
// mutation starting point.
func FuzzJobsHandler(f *testing.F) {
	d := New(Config{Workers: 2, QueueDepth: 8, JobTimeout: 5 * time.Second, CacheSize: 8, Logger: quietLogger()})
	srv := httptest.NewServer(d.Handler())
	f.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Close(ctx)
	})

	f.Add(``)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"version":"msrnet-job/v1","jobs":[]}`)
	f.Add(`{"version":"bogus","jobs":[{"mode":"ard","net":{}}]}`)
	for _, c := range validate.Corpus() {
		f.Add(fmt.Sprintf(`{"version":"msrnet-job/v1","jobs":[{"mode":"ard","net":%s}]}`, c.JSON))
		f.Add(fmt.Sprintf(`{"version":"msrnet-job/v1","jobs":[{"mode":"msri","options":{"spec":1.5},"net":%s}]}`, c.JSON))
	}

	client := srv.Client()
	f.Fuzz(func(t *testing.T, body string) {
		resp, err := client.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("transport error: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("bare 5xx %d for body %q", resp.StatusCode, body)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var r Response
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				t.Fatalf("200 with undecodable body: %v", err)
			}
			if r.Version != SchemaVersion {
				t.Fatalf("200 with version %q", r.Version)
			}
		default:
			var eb ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("status %d with undecodable body: %v", resp.StatusCode, err)
			}
			if eb.Code == "" {
				t.Fatalf("status %d rejection without a code", resp.StatusCode)
			}
		}
	})
}
