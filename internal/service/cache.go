package service

import (
	"container/list"
	"sync"

	"msrnet/internal/obs"
)

// resultCache is a fixed-capacity LRU of job results keyed by the
// canonical content hash of the net plus its options (Job.cacheKey).
// Stored Results are treated as immutable: Get returns the shared value
// and callers must not mutate it (the HTTP layer only stamps the
// per-request ID/Cached fields on a copy). All methods are safe for
// concurrent use; hit/miss/eviction counts feed the svc/cache_*
// counters.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	idx map[string]*list.Element

	hits, misses, evictions, inserts *obs.Counter
	size                             *obs.Gauge
}

type cacheEntry struct {
	key string
	res Result
}

// newResultCache builds a cache of the given capacity; capacity ≤ 0
// disables caching (every Get misses, Put drops). The registry may be
// nil.
func newResultCache(capacity int, reg *obs.Registry) *resultCache {
	return &resultCache{
		cap:       capacity,
		ll:        list.New(),
		idx:       map[string]*list.Element{},
		hits:      reg.Counter("svc/cache_hits"),
		misses:    reg.Counter("svc/cache_misses"),
		evictions: reg.Counter("svc/cache_evictions"),
		inserts:   reg.Counter("svc/cache_inserts"),
		size:      reg.Gauge("svc/cache_size"),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *resultCache) Get(key string) (Result, bool) {
	if c.cap <= 0 {
		c.misses.Inc()
		return Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		c.misses.Inc()
		return Result{}, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).res, true
}

// Put stores a result, evicting the least recently used entry when the
// cache is full. Failed results are not worth caching — callers only
// Put successes.
func (c *resultCache) Put(key string, res Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.idx[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	c.inserts.Inc()
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.idx, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.size.Set(int64(c.ll.Len()))
}

// Len reports the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
