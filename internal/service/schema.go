// Package service is the long-lived serving layer of the repository:
// the msrnet-job/v1 request/response schema, a bounded job queue
// feeding a worker pool with per-job deadlines and panic isolation, and
// an LRU result cache keyed by the canonical content hash of the net
// plus its options. Command msrnetd wires it to a listener together
// with the internal/obs/export surface; see DESIGN.md §8.
package service

import (
	"fmt"
	"strings"

	"msrnet/internal/core"
	"msrnet/internal/netio"
)

// SchemaVersion identifies the wire schema. Requests must carry it;
// responses echo it.
const SchemaVersion = "msrnet-job/v1"

// Request is the body of POST /v1/jobs: one or more nets to evaluate.
type Request struct {
	Version string `json:"version"`
	Jobs    []Job  `json:"jobs"`
	// Explain asks for a per-job msrnet-explain/v1 report on every
	// result (also settable as ?explain=1 on the URL). Reports are
	// per-request decoration: they carry trace-scoped identity and are
	// never part of the cache key or the cached value.
	Explain bool `json:"explain,omitempty"`
	// Profile additionally asks for the msrnet-solveprof/v1
	// candidate-lifecycle waste profile on every optimize result (also
	// ?profile=1). Profile implies Explain: the profile rides on the
	// explain report. A profiled request always recomputes — a cached
	// result has no lifecycle to attribute — and, like the explain, the
	// profile is stripped before the result enters the cache.
	Profile bool `json:"profile,omitempty"`
}

// Job is one net plus what to compute on it.
type Job struct {
	// ID is an opaque client label echoed on the result. Optional; a
	// batch index is used when empty.
	ID string `json:"id,omitempty"`
	// Mode selects the computation: "ard" (the linear-time augmented
	// RC-diameter of the unoptimized net, §III), "msri" (the optimal
	// repeater-insertion dynamic program, §IV) or "both".
	Mode string `json:"mode"`
	// Net is the topology plus technology, in the netio on-disk form.
	Net netio.NetFile `json:"net"`
	// Options tunes the msri run; ignored in mode "ard".
	Options JobOptions `json:"options,omitempty"`
}

// JobOptions mirrors the msri command-line surface.
type JobOptions struct {
	// Optimize selects what the DP assigns: "repeaters" (default),
	// "sizing" or "both".
	Optimize string `json:"optimize,omitempty"`
	// Spec, when positive, asks for the min-cost solution with
	// ARD ≤ Spec ns (Problem 2.1) instead of the min-ARD solution.
	Spec float64 `json:"spec,omitempty"`
	// Pruner selects the MFS implementation: "divide" (default) or
	// "naive".
	Pruner string `json:"pruner,omitempty"`
	// WireWidths enables wire sizing over the listed width factors.
	WireWidths []float64 `json:"wire_widths,omitempty"`
	// IncludeSelf counts u==v source/sink pairs in the ARD.
	IncludeSelf bool `json:"include_self,omitempty"`
	// Parallel evaluates independent subtrees of this one net
	// concurrently — intra-net parallelism, composing with (and
	// independent of) the daemon's worker-pool parallelism across jobs.
	Parallel bool `json:"parallel,omitempty"`
}

// Response is the body of a successful POST /v1/jobs: one result per
// job, in request order.
type Response struct {
	Version string   `json:"version"`
	Results []Result `json:"results"`
}

// Result statuses.
const (
	StatusOK    = "ok"
	StatusError = "error"
)

// Error codes carried on failed results and error bodies.
const (
	ErrBadRequest       = "bad_request"       // malformed request envelope or net
	ErrQueueFull        = "queue_full"        // backpressure: retry later
	ErrDeadlineExceeded = "deadline_exceeded" // per-job deadline hit
	ErrInternal         = "internal"          // panic or other fault isolated to the job
	ErrSpecUnmet        = "spec_unmet"        // no solution meets the requested timing spec
	ErrShuttingDown     = "shutting_down"     // daemon is draining
	ErrShedLoad         = "shed_load"         // job spent its deadline queued; resubmit for a fresh budget
	ErrUnauthorized     = "unauthorized"      // missing or unknown API key (multi-tenant daemons)
	ErrQuotaExceeded    = "quota_exceeded"    // per-tenant quota hit; honor the Retry-After header
)

// retryableCode reports whether a failure code describes a transient
// condition: resubmitting the identical job (safe — jobs are
// idempotent, keyed by content hash) may succeed. Client-caused
// failures (bad_request, spec_unmet) are deterministic and not
// retryable.
func retryableCode(code string) bool {
	switch code {
	case ErrDeadlineExceeded, ErrShedLoad, ErrInternal, ErrQueueFull, ErrShuttingDown, ErrQuotaExceeded:
		return true
	}
	return false
}

// Result is the outcome for one job.
type Result struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Code and Error describe the failure when Status is "error".
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
	// Retryable marks a failure as transient: resubmitting the same job
	// is safe (jobs are idempotent by content hash) and may succeed.
	Retryable bool `json:"retryable,omitempty"`
	// Cached reports that the result was served from the LRU cache.
	Cached bool `json:"cached,omitempty"`
	// Degraded reports that the optimizer fell back to coarse (ε-relaxed)
	// pruning to meet the job deadline; DegradedReason says why. The
	// result is complete and valid but its ARD may exceed the exact
	// optimum by the documented bound (see OptResult.CoarseEps). Degraded
	// results are never cached — a retry with more headroom recomputes
	// exactly.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// NetKey is the canonical content hash of the net (the net half of
	// the cache key), so clients can correlate identical nets.
	NetKey string `json:"net_key,omitempty"`

	ARD *ARDResult `json:"ard,omitempty"`
	Opt *OptResult `json:"opt,omitempty"`

	// Explain is the per-job solve report, present only when the request
	// asked for one (Request.Explain / ?explain=1). The same report is
	// retrievable later at GET /debug/jobs/{job_id}.
	Explain *Explain `json:"explain,omitempty"`

	// Client is stamped by internal/client (never by the daemon): the
	// retry work this result cost — attempts, job-retry rounds and total
	// backoff slept.
	Client *ClientInfo `json:"client,omitempty"`
}

// ClientInfo is the client-side delivery report attached to a Result
// by internal/client.
type ClientInfo struct {
	// Attempts counts HTTP submissions that carried this job (first try
	// included).
	Attempts int `json:"attempts"`
	// Rounds counts job-level retry rounds that resubmitted this job.
	Rounds int `json:"rounds,omitempty"`
	// BackoffMs is the total backoff slept before submissions carrying
	// this job.
	BackoffMs float64 `json:"backoff_ms,omitempty"`
	// TraceID is the correlation ID the client sent on the submission.
	TraceID string `json:"trace_id,omitempty"`
}

// ARDResult reports the unoptimized augmented RC-diameter.
type ARDResult struct {
	ARD      float64 `json:"ard_ns"`
	CritSrc  string  `json:"crit_src,omitempty"`
	CritSink string  `json:"crit_sink,omitempty"`
}

// OptResult reports the dynamic program's outcome: the full Pareto
// suite, the chosen solution and its concrete assignment.
type OptResult struct {
	Suite  []SuitePoint         `json:"suite"`
	Chosen SuitePoint           `json:"chosen"`
	Assign netio.AssignmentJSON `json:"assignment"`
	Stats  core.Stats           `json:"stats"`
	// CoarseEps is the dominance relaxation the degraded run used (only
	// set when the carrying Result is Degraded). The reported ARD is at
	// most CoarseEps×Stats.PruneCalls above the exact optimum.
	CoarseEps float64 `json:"coarse_eps,omitempty"`
}

// SuitePoint is one point of the cost/ARD tradeoff frontier.
type SuitePoint struct {
	Cost      float64 `json:"cost"`
	ARD       float64 `json:"ard_ns"`
	Repeaters int     `json:"repeaters"`
}

// ErrorBody is the structured body of a non-200 response.
type ErrorBody struct {
	Version string `json:"version"`
	Code    string `json:"code"`
	Error   string `json:"error"`
	// Cause carries the msrnet-error/v1 taxonomy code (see
	// internal/validate) when the failure traces to net or technology
	// validation — machine-readable, so clients can branch without
	// parsing Error.
	Cause string `json:"cause,omitempty"`
}

// Validate checks the request envelope (not the nets — decode errors
// surface per job at submission).
func (r *Request) Validate() error {
	if r.Version != SchemaVersion {
		return fmt.Errorf("unsupported version %q (want %q)", r.Version, SchemaVersion)
	}
	if len(r.Jobs) == 0 {
		return fmt.Errorf("empty job list")
	}
	for i := range r.Jobs {
		if err := r.Jobs[i].validate(); err != nil {
			return fmt.Errorf("job %s: %w", r.Jobs[i].label(i), err)
		}
	}
	return nil
}

func (j *Job) validate() error {
	switch j.Mode {
	case "ard", "msri", "both":
	default:
		return fmt.Errorf("unknown mode %q (want ard, msri or both)", j.Mode)
	}
	switch j.Options.Optimize {
	case "", "repeaters", "sizing", "both":
	default:
		return fmt.Errorf("unknown optimize %q (want repeaters, sizing or both)", j.Options.Optimize)
	}
	switch j.Options.Pruner {
	case "", "divide", "naive":
	default:
		return fmt.Errorf("unknown pruner %q (want divide or naive)", j.Options.Pruner)
	}
	return nil
}

// label names the job in errors and results: the client ID, or the
// batch index when absent.
func (j *Job) label(i int) string {
	if j.ID != "" {
		return j.ID
	}
	return fmt.Sprintf("#%d", i)
}

// cacheKey derives the result-cache key: the canonical content hash of
// the net joined with a rendering of everything else that determines
// the result. Two jobs collide exactly when they are guaranteed to
// produce identical results — so defaults are normalized ("" and
// "repeaters" collide) but WireWidths order is preserved (option order
// can break ties in the DP), and Parallel is excluded (serial and
// parallel runs are identical by construction).
func (j *Job) cacheKey(netKey string) string {
	var b strings.Builder
	b.WriteString(netKey)
	fmt.Fprintf(&b, "|mode=%s", j.Mode)
	if j.Mode != "ard" {
		fmt.Fprintf(&b, "|opt=%s|spec=%g|pruner=%s", j.optimize(), j.Options.Spec, j.pruner())
		if len(j.Options.WireWidths) > 0 {
			fmt.Fprintf(&b, "|widths=%v", j.Options.WireWidths)
		}
	}
	fmt.Fprintf(&b, "|self=%t", j.Options.IncludeSelf)
	return b.String()
}

func (j *Job) optimize() string {
	if j.Options.Optimize == "" {
		return "repeaters"
	}
	return j.Options.Optimize
}

func (j *Job) pruner() string {
	if j.Options.Pruner == "" {
		return "divide"
	}
	return j.Options.Pruner
}
