package service

import (
	"context"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"time"

	"msrnet/internal/buildinfo"
	"msrnet/internal/cluster"
	"msrnet/internal/obs/export"
	"msrnet/internal/obs/recorder"
	"msrnet/internal/obs/reqctx"
)

// maxRequestBytes bounds a request body; a batch of a few hundred
// multi-thousand-node nets fits comfortably.
const maxRequestBytes = 64 << 20

// Handler returns the daemon's full HTTP surface on one mux:
//
//	POST /v1/jobs          msrnet-job/v1 batch optimization (?explain=1, ?profile=1)
//	GET  /v1/recovered     WAL-replayed jobs; fetching done results acks them (?keep=1 to peek)
//	GET  /readyz           readiness: 503 while draining or saturated
//	GET  /debug/jobs       live + recent per-job explain reports
//	GET  /debug/jobs/{id}  one report, by job id or trace id
//	GET  /debug/trace      the shared ring tracer as Chrome trace JSON
//	GET  /debug/recorder   flight-recorder ring + SLO rule state (?n=…)
//	POST /debug/dump       force a postmortem bundle; returns its path
//	GET  /version          msrnet-build/v1 build identity of the binary
//	GET  /metrics          Prometheus text exposition (includes svc/* series)
//	GET  /debug/vars, /debug/pprof/*, /healthz   (internal/obs/export)
//	/cluster/*             gossip, membership, shard cache (clustered daemons)
//
// /healthz (liveness) keeps answering 200 throughout a drain; only
// /readyz flips.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", d.handleJobs)
	mux.HandleFunc("GET /v1/recovered", d.handleRecovered)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /version", handleVersion)
	mux.HandleFunc("GET /debug/jobs", d.handleJobList)
	mux.HandleFunc("GET /debug/jobs/{id}", d.handleJobGet)
	mux.HandleFunc("GET /debug/trace", d.handleTrace)
	mux.HandleFunc("GET /debug/spans/{id}", d.handleSpans)
	mux.HandleFunc("GET /debug/recorder", d.handleRecorder)
	mux.HandleFunc("POST /debug/dump", d.handleDump)
	if d.cfg.Cluster != nil {
		mux.Handle("/cluster/", cluster.Handler(d.cfg.Cluster))
	}
	export.Register(mux, d.reg)
	return mux
}

func (d *Daemon) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, ErrBadRequest, "POST required")
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrBadRequest, "decode request: "+err.Error())
		return
	}
	if r.URL.Query().Get("explain") == "1" {
		req.Explain = true
	}
	if r.URL.Query().Get("profile") == "1" {
		req.Profile = true
	}
	ctx := WithAPIKey(r.Context(), r.Header.Get(reqctx.HeaderAPIKey))
	// A work-stolen submission arrives with its forward provenance on
	// the X-Msrnet-Forward-* headers: the hop count caps re-forwarding
	// and the origin shows up as forwarded_from on explain reports.
	if h := r.Header.Get(cluster.HeaderForwardHops); h != "" {
		hops, err := strconv.Atoi(h)
		if err != nil || hops < 0 {
			writeError(w, http.StatusBadRequest, ErrBadRequest, "bad "+cluster.HeaderForwardHops+": want a non-negative integer")
			return
		}
		ctx = withForwardMeta(ctx, cluster.ForwardMeta{
			Hops: hops, From: cluster.ID(r.Header.Get(cluster.HeaderForwardFrom)),
			ParentSpan: r.Header.Get(cluster.HeaderForwardSpan),
		})
	}
	resp, serr := d.Submit(ctx, &req)
	if serr != nil {
		// Both backpressure rejections are retryable with a hint: 429
		// (queue full, or a per-tenant quota with ITS OWN deficit-derived
		// wait) and 503 (draining — a rolling restart, so another peer or
		// the same one post-restart will take the retry).
		if serr.Status == http.StatusTooManyRequests || serr.Status == http.StatusServiceUnavailable {
			secs := int64(1)
			if serr.RetryAfter > time.Second {
				secs = int64(serr.RetryAfter / time.Second)
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
		writeErrorBody(w, serr.Status, ErrorBody{
			Version: SchemaVersion, Code: serr.Code, Error: serr.Msg, Cause: serr.Cause,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		d.log.WarnContext(r.Context(), "response write failed", "err", err)
	}
}

// handleVersion serves the binary's msrnet-build/v1 identity.
func handleVersion(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(buildinfo.Get())
}

func (d *Daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ok, reason := d.Ready()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("not ready: " + reason + "\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

// jobListBody is the JSON shape of GET /debug/jobs.
type jobListBody struct {
	Schema string    `json:"schema"`
	Active []Explain `json:"active,omitempty"`
	Recent []Explain `json:"recent,omitempty"`
}

func (d *Daemon) handleJobList(w http.ResponseWriter, r *http.Request) {
	active, recent := d.table.List()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(jobListBody{Schema: ExplainSchema, Active: active, Recent: recent})
}

func (d *Daemon) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := d.table.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrBadRequest, "no job or trace "+id+" in the explain window")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(e)
}

func (d *Daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	if d.cfg.Tracer == nil {
		writeError(w, http.StatusNotFound, ErrBadRequest, "tracing disabled (start the daemon with -trace-events)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// ?trace_id= narrows the export to events stamped with that request's
	// trace ID — the single-job view of the shared ring.
	if err := d.cfg.Tracer.WriteJSONFilter(w, r.URL.Query().Get("trace_id")); err != nil {
		d.log.WarnContext(r.Context(), "trace write failed", "err", err)
	}
}

// handleSpans serves GET /debug/spans/{traceID}: this process's spans
// for one trace as a deterministic msrnet-spans/v1 body. The fleet
// collector (msrnetctl -trace) fans this out over the membership and
// stitches the exports into one cross-process tree.
func (d *Daemon) handleSpans(w http.ResponseWriter, r *http.Request) {
	if d.cfg.Spans == nil {
		writeError(w, http.StatusNotFound, ErrBadRequest, "span tracing disabled")
		return
	}
	id := r.PathValue("id")
	body, ok := d.cfg.Spans.ExportJSON(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrBadRequest, "no spans for trace "+id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleRecorder serves the live flight-recorder state: the sampled
// ring (bounded by ?n=, newest-last) and each SLO rule's evaluation.
func (d *Daemon) handleRecorder(w http.ResponseWriter, r *http.Request) {
	if d.cfg.Recorder == nil {
		writeError(w, http.StatusNotFound, ErrBadRequest, "flight recorder disabled (start the daemon with -postmortem-dir or -slo)")
		return
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			writeError(w, http.StatusBadRequest, ErrBadRequest, "bad n: want a non-negative integer")
			return
		}
		n = parsed
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(d.cfg.Recorder.State(n))
}

// handleDump forces a postmortem bundle (reason "manual"), bypassing
// the automatic-trigger cooldown, and returns the bundle path.
func (d *Daemon) handleDump(w http.ResponseWriter, r *http.Request) {
	if d.cfg.Recorder == nil {
		writeError(w, http.StatusNotFound, ErrBadRequest, "flight recorder disabled (start the daemon with -postmortem-dir)")
		return
	}
	dir, err := d.cfg.Recorder.Trigger(recorder.ReasonManual, "POST /debug/dump from "+r.RemoteAddr)
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrInternal, "postmortem capture failed: "+err.Error())
		return
	}
	d.log.InfoContext(r.Context(), "postmortem bundle written", "bundle", dir, "reason", recorder.ReasonManual)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"schema": recorder.BundleSchema, "bundle": dir})
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeErrorBody(w, status, ErrorBody{Version: SchemaVersion, Code: code, Error: msg})
}

func writeErrorBody(w http.ResponseWriter, status int, body ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// HTTPServer is the daemon's bound listener. Shutdown stops accepting,
// waits for in-flight requests (whose jobs it therefore drains), then
// closes the daemon itself.
type HTTPServer struct {
	d   *Daemon
	ln  net.Listener
	srv *http.Server
}

// Addr reports the bound address (useful with ":0").
func (s *HTTPServer) Addr() net.Addr { return s.ln.Addr() }

// StartDrain flips the daemon to draining (readyz 503, admission
// closed) while the listener keeps serving — call it a grace period
// before Shutdown so load balancers observe the transition.
func (s *HTTPServer) StartDrain() { s.d.StartDrain() }

// Shutdown performs the graceful sequence: mark not-ready, stop the
// listener, wait for in-flight requests, then drain the worker pool.
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	s.d.StartDrain()
	err := s.srv.Shutdown(ctx)
	if cerr := s.d.Close(ctx); err == nil {
		err = cerr
	}
	return err
}

// Serve binds addr and serves the daemon's Handler with the standard
// access log, under the trace-propagation middleware: every request
// gets its X-Msrnet-Trace-Id (accepted or generated) on the context,
// so handler and job logs carry trace_id when logger uses
// reqctx.Handler. The server runs on its own goroutine; the caller
// owns the Shutdown.
func Serve(addr string, d *Daemon, logger *slog.Logger) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListener(ln, d, logger), nil
}

// ServeListener is Serve on an already-bound listener. A clustered
// daemon advertises its base URL as its fleet identity, so callers
// that need the address before the daemon exists (tests, or a future
// systemd socket activation) bind first and hand the listener over.
func ServeListener(ln net.Listener, d *Daemon, logger *slog.Logger) *HTTPServer {
	if logger == nil {
		logger = slog.Default()
	}
	srv := &http.Server{
		Handler:           reqctx.Middleware(export.LogRequests(logger, d.Handler())),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("msrnetd server failed", "addr", ln.Addr().String(), "err", err)
		}
	}()
	logger.Info("msrnetd listening", "addr", ln.Addr().String(),
		"endpoints", []string{"/v1/jobs", "/readyz", "/debug/jobs", "/debug/trace", "/debug/recorder", "/debug/dump", "/metrics", "/debug/vars", "/debug/pprof/", "/healthz"})
	return &HTTPServer{d: d, ln: ln, srv: srv}
}
