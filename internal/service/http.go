package service

import (
	"context"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"time"

	"msrnet/internal/obs/export"
)

// maxRequestBytes bounds a request body; a batch of a few hundred
// multi-thousand-node nets fits comfortably.
const maxRequestBytes = 64 << 20

// Handler returns the daemon's full HTTP surface on one mux:
//
//	POST /v1/jobs   msrnet-job/v1 batch optimization
//	GET  /metrics   Prometheus text exposition (includes svc/* series)
//	GET  /debug/vars, /debug/pprof/*, /healthz   (internal/obs/export)
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", d.handleJobs)
	export.Register(mux, d.reg)
	return mux
}

func (d *Daemon) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, ErrBadRequest, "POST required")
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrBadRequest, "decode request: "+err.Error())
		return
	}
	resp, serr := d.Submit(r.Context(), &req)
	if serr != nil {
		if serr.Status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeErrorBody(w, serr.Status, ErrorBody{
			Version: SchemaVersion, Code: serr.Code, Error: serr.Msg, Cause: serr.Cause,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		d.log.Warn("response write failed", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeErrorBody(w, status, ErrorBody{Version: SchemaVersion, Code: code, Error: msg})
}

func writeErrorBody(w http.ResponseWriter, status int, body ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// HTTPServer is the daemon's bound listener. Shutdown stops accepting,
// waits for in-flight requests (whose jobs it therefore drains), then
// closes the daemon itself.
type HTTPServer struct {
	d   *Daemon
	ln  net.Listener
	srv *http.Server
}

// Addr reports the bound address (useful with ":0").
func (s *HTTPServer) Addr() net.Addr { return s.ln.Addr() }

// Shutdown performs the graceful sequence: stop the listener, wait for
// in-flight requests, then drain the worker pool.
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if cerr := s.d.Close(ctx); err == nil {
		err = cerr
	}
	return err
}

// Serve binds addr and serves the daemon's Handler with the standard
// access log. The server runs on its own goroutine; the caller owns the
// Shutdown.
func Serve(addr string, d *Daemon, logger *slog.Logger) (*HTTPServer, error) {
	if logger == nil {
		logger = slog.Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           export.LogRequests(logger, d.Handler()),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("msrnetd server failed", "addr", ln.Addr().String(), "err", err)
		}
	}()
	logger.Info("msrnetd listening", "addr", ln.Addr().String(),
		"endpoints", []string{"/v1/jobs", "/metrics", "/debug/vars", "/debug/pprof/", "/healthz"})
	return &HTTPServer{d: d, ln: ln, srv: srv}, nil
}
