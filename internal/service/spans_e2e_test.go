package service

import (
	"bytes"
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msrnet/internal/jobstore"
	"msrnet/internal/obs"
	"msrnet/internal/obs/reqctx"
	"msrnet/internal/obs/spans"
	"msrnet/internal/spancollect"
)

// This file is the distributed-tracing acceptance e2e (DESIGN.md §15):
// a 3-node in-memory fleet where one member is saturated so a traced
// batch is stolen by a peer, proving the stitched cross-process trace
// contains the client-side hop, the executing peer's queue/solve spans
// and its WAL append/fsync spans; that stitching is deterministic; that
// critical-path percentages cover the whole window; and that the
// msrnet-spans/v1 export is byte-stable. A second test proves a
// WAL-replayed job's spans join the original trace ID across a restart.

// spanClock is a deterministic shared clock for span indexes: every
// reading advances a global counter by step (1 ms), so span durations
// are positive and totally ordered; freeze() pins the clock so repeated
// exports read the same WallUnixNs. Per-index skews simulate fleet
// clock disagreement without breaking the underlying total order.
type spanClock struct {
	base time.Time
	n    atomic.Int64
	step atomic.Int64
}

func newSpanClock() *spanClock {
	c := &spanClock{base: time.Unix(1_700_000_000, 0)}
	c.step.Store(int64(time.Millisecond))
	return c
}

func (c *spanClock) at(skew time.Duration) func() time.Time {
	return func() time.Time {
		return c.base.Add(skew + time.Duration(c.n.Add(c.step.Load())))
	}
}

func (c *spanClock) freeze() { c.step.Store(0) }

// TestFleetStitchedTraceAcrossForward is the forwarded-job half of the
// acceptance bar.
func TestFleetStitchedTraceAcrossForward(t *testing.T) {
	clk := newSpanClock()
	skews := []time.Duration{0, 50 * time.Millisecond, -30 * time.Millisecond}
	idxs := make([]*spans.Index, 3)
	f := newTestFleet(t, 3, func(i int, cfg *Config) {
		idxs[i] = spans.NewIndex(spans.Options{
			Process: string(fleetID(i)),
			Now:     clk.at(skews[i]),
		})
		cfg.Spans = idxs[i]
		st, _, err := jobstore.Open(jobstore.Options{
			Dir: t.TempDir(), Logger: quietLogger(), Spans: idxs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		cfg.Store = st
		if i == 0 {
			cfg.Workers, cfg.QueueDepth = 1, 1
		}
	})
	f.converge(30)

	// Saturate node-0 with untraced jobs: one on the worker, one in the
	// only queue slot.
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	f.ds[0].execHook = func(ctx context.Context, tk *task) Result {
		started <- struct{}{}
		<-release
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for _, id := range []string{"busy", "queued"} {
		go func(id string) {
			defer wg.Done()
			mustSubmit(t, f.ds[0], oneJobRequest(Job{ID: id, Mode: "ard", Net: testNetFile(t, 61, 6)}))
		}(id)
		if id == "busy" {
			<-started
		}
	}
	waitFor(t, func() bool {
		f.ds[0].mu.Lock()
		defer f.ds[0].mu.Unlock()
		return f.ds[0].free == 0
	})
	defer func() {
		close(release)
		wg.Wait()
	}()

	// The traced batch: node-0 cannot admit it, so it must cross a hop.
	const traceID = "e2e0spanstitch00"
	ctx := reqctx.WithTraceID(context.Background(), traceID)
	resp, serr := f.ds[0].Submit(ctx, &Request{Version: SchemaVersion,
		Jobs: []Job{{ID: "stolen", Mode: "both", Net: testNetFile(t, 62, 6)}}, Explain: true})
	if serr != nil {
		t.Fatalf("submit rejected: %v", serr)
	}
	res := resp.Results[0]
	if res.Status != StatusOK || res.Explain == nil {
		t.Fatalf("stolen job: status=%s explain=%v", res.Status, res.Explain)
	}
	if res.Explain.Spans == nil || res.Explain.Spans.Count == 0 {
		t.Fatalf("executing peer's explain carries no span summary: %+v", res.Explain.Spans)
	}

	clk.freeze()

	// Exactly two processes know the trace: node-0 and the stealing peer.
	exp0, ok := idxs[0].Export(traceID)
	if !ok {
		t.Fatal("node-0 has no spans for the trace")
	}
	var expPeer spans.TraceExport
	peers := 0
	for i := 1; i < 3; i++ {
		if e, ok := idxs[i].Export(traceID); ok {
			expPeer = e
			peers++
		}
	}
	if peers != 1 {
		t.Fatalf("%d peers hold the trace, want exactly 1", peers)
	}

	// msrnet-spans/v1 export is byte-stable under a fixed clock.
	for _, idx := range []*spans.Index{idxs[0], idxs[1], idxs[2]} {
		if a, ok := idx.ExportJSON(traceID); ok {
			b, _ := idx.ExportJSON(traceID)
			if !bytes.Equal(a, b) {
				t.Fatalf("ExportJSON not byte-stable for %s", idx.Process())
			}
		}
	}

	// The client side of the hop lives on node-0; the peer's root links
	// under it via the forwarded span reference.
	var hopRef string
	for _, r := range exp0.Spans {
		if r.Name == "forward" {
			hopRef = r.Ref(exp0.Process)
			if r.Peer != expPeer.Process {
				t.Errorf("hop names peer %q, executing process is %q", r.Peer, expPeer.Process)
			}
		}
	}
	if hopRef == "" {
		t.Fatalf("node-0 recorded no forward span: %+v", names(exp0.Spans))
	}
	var peerRootLinked bool
	for _, r := range expPeer.Spans {
		if r.Name == "submit" && r.ParentRemote == hopRef {
			peerRootLinked = true
		}
	}
	if !peerRootLinked {
		t.Fatalf("peer submit root does not link to hop %s: %+v", hopRef, expPeer.Spans)
	}
	for _, want := range []string{"submit", "queue", "solve", "wal/append", "wal/fsync"} {
		if !hasName(expPeer.Spans, want) {
			t.Errorf("executing peer missing %q span: %v", want, names(expPeer.Spans))
		}
	}

	// Stitch on the collector timeline, correcting each process's skew.
	procs := []spancollect.ProcessSpans{
		{Process: exp0.Process, OffsetNs: int64(skews[0]), Spans: exp0.Spans},
		{Process: expPeer.Process, OffsetNs: int64(skewOf(t, skews, expPeer.Process)), Spans: expPeer.Spans},
	}
	st := spancollect.Stitch(traceID, procs)
	if len(st.Processes) != 2 {
		t.Fatalf("stitched processes = %v, want 2", st.Processes)
	}
	root := st.Root()
	if root < 0 || st.Nodes[root].Process != exp0.Process || st.Nodes[root].Name != "submit" {
		t.Fatalf("primary root = %+v, want node-0 submit", st.Nodes[root])
	}
	// The peer's submit hangs under node-0's forward span in ONE tree.
	hopIdx, peerSubmit := -1, -1
	for i := range st.Nodes {
		switch {
		case st.Nodes[i].Name == "forward":
			hopIdx = i
		case st.Nodes[i].Name == "submit" && st.Nodes[i].Process == expPeer.Process:
			peerSubmit = i
		}
	}
	if hopIdx < 0 || peerSubmit < 0 || st.Nodes[peerSubmit].Parent != hopIdx {
		t.Fatalf("peer submit (idx %d) not parented to hop (idx %d)", peerSubmit, hopIdx)
	}

	// Deterministic: stitching the same exports again renders the same
	// waterfall and the same Chrome trace, byte for byte.
	st2 := spancollect.Stitch(traceID, procs)
	var w1, w2, c1, c2 bytes.Buffer
	st.WriteWaterfall(&w1)
	st2.WriteWaterfall(&w2)
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("waterfall render is not deterministic")
	}
	if err := st.WriteChrome(&c1); err != nil {
		t.Fatal(err)
	}
	if err := st2.WriteChrome(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("Chrome trace render is not deterministic")
	}

	// Critical path: the whole end-to-end window is attributed, summing
	// to 100% within rounding, and the hop + solve both show up.
	cp := st.CriticalPath()
	if cp.TotalMs <= 0 || cp.Dominant == "" {
		t.Fatalf("critical path empty: %+v", cp)
	}
	sum := 0.0
	seen := map[string]bool{}
	for _, s := range cp.Shares {
		sum += s.Pct
		seen[s.Class] = true
	}
	if math.Abs(sum-100) > 0.01 {
		t.Fatalf("critical-path percentages sum to %v, want 100", sum)
	}
	for _, class := range []string{spans.ClassHop, spans.ClassSolve} {
		if !seen[class] {
			t.Errorf("critical path missing class %q: %+v", class, cp.Shares)
		}
	}
}

// TestReplaySpansJoinOriginalTrace: a job recovered from the WAL after
// a crash re-runs under the ORIGINAL trace ID, with a replay root span,
// so the fleet collector can see the whole story of a crashed job in
// one trace.
func TestReplaySpansJoinOriginalTrace(t *testing.T) {
	clk := newSpanClock()
	const traceID = "e2e0replaytrace0"

	reg := obs.New()
	walDir := t.TempDir()
	idx1 := spans.NewIndex(spans.Options{Process: "crashing", Now: clk.at(0)})
	store, rep := openStoreSpansT(t, walDir, reg, idx1)
	if len(rep.Entries) != 0 {
		t.Fatalf("fresh WAL replayed %d entries", len(rep.Entries))
	}
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 4, Reg: reg, Store: store, Spans: idx1})
	gate := make(chan struct{})
	d.execHook = func(ctx context.Context, tk *task) Result {
		<-gate
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey}
	}

	go func() {
		ctx := reqctx.WithTraceID(context.Background(), traceID)
		d.Submit(ctx, oneJobRequest(Job{ID: "doomed", Mode: "ard", Net: testNetFile(t, 63, 6)}))
	}()
	// One accepted record on disk, the job blocked mid-solve: the state
	// kill -9 leaves behind.
	waitFor(t, func() bool { return reg.Counter("wal/appends").Value() == 1 })
	crashDir := copyDir(t, walDir)
	close(gate)

	reg2 := obs.New()
	idx2 := spans.NewIndex(spans.Options{Process: "recovered", Now: clk.at(0)})
	store2, rep2 := openStoreSpansT(t, crashDir, reg2, idx2)
	if len(rep2.Entries) != 1 {
		t.Fatalf("replayed %d entries, want 1", len(rep2.Entries))
	}
	d2 := newTestDaemon(t, Config{Workers: 1, QueueDepth: 4, Reg: reg2, Store: store2, Spans: idx2})
	d2.execHook = func(ctx context.Context, tk *task) Result {
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey}
	}
	if requeued, _ := d2.Recover(rep2); requeued != 1 {
		t.Fatalf("requeued %d jobs, want 1", requeued)
	}
	waitFor(t, func() bool {
		exp, ok := idx2.Export(traceID)
		return ok && hasName(exp.Spans, "replay") && hasName(exp.Spans, "solve")
	})

	exp, _ := idx2.Export(traceID)
	if exp.TraceID != traceID {
		t.Fatalf("replayed spans under trace %q, want original %q", exp.TraceID, traceID)
	}
	for _, want := range []string{"replay", "queue", "solve"} {
		if !hasName(exp.Spans, want) {
			t.Errorf("recovered daemon missing %q span: %v", want, names(exp.Spans))
		}
	}
	// The replay root carries the WAL identity that resurrected it.
	for _, r := range exp.Spans {
		if r.Name == "replay" && r.Attrs["wal_uid"] == "" {
			t.Errorf("replay span has no wal_uid attr: %+v", r)
		}
	}
}

// openStoreSpansT opens a jobstore wired to a span index.
func openStoreSpansT(t *testing.T, dir string, reg *obs.Registry, idx *spans.Index) (*jobstore.Store, *jobstore.Replay) {
	t.Helper()
	st, rep, err := jobstore.Open(jobstore.Options{Dir: dir, Reg: reg, Logger: quietLogger(), Spans: idx})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, rep
}

func hasName(recs []spans.Record, name string) bool {
	for _, r := range recs {
		if r.Name == name {
			return true
		}
	}
	return false
}

func names(recs []spans.Record) []string {
	out := make([]string, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Name)
	}
	return out
}

// skewOf finds the configured skew of the fleet member that executed
// the stolen job.
func skewOf(t *testing.T, skews []time.Duration, process string) time.Duration {
	t.Helper()
	for i, s := range skews {
		if string(fleetID(i)) == process {
			return s
		}
	}
	t.Fatalf("unknown process %q", process)
	return 0
}
