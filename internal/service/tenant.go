package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"time"

	"msrnet/internal/obs"
)

// This file is the multi-tenant admission and dispatch layer
// (DESIGN.md §14): API keys resolve callers to named tenants, per-tenant
// quotas (queue slots, nets/sec) bound each tenant at admission with a
// per-tenant Retry-After instead of global backpressure, and a stride
// (weighted fair-share) scheduler replaces the strict-FIFO job channel
// so a heavy tenant's backlog cannot starve a light one.

// TenantsSchema identifies the -tenants config file layout.
const TenantsSchema = "msrnet-tenants/v1"

// DefaultTenant is the implicit tenant of a daemon started without a
// tenants file: every caller, no API key required, no quotas.
const DefaultTenant = "default"

// TenantConfig is one tenant in the msrnet-tenants/v1 file.
type TenantConfig struct {
	// Name is the tenant's identity everywhere downstream: explain
	// reports, per-tenant metrics, WAL records, postmortem bundles.
	Name string `json:"name"`
	// APIKey authenticates the tenant (X-Msrnet-Api-Key). Required.
	APIKey string `json:"api_key"`
	// Weight is the tenant's fair-share of worker dispatch (default 1):
	// a weight-3 tenant drains three queued jobs for every one of a
	// weight-1 tenant while both have a backlog.
	Weight float64 `json:"weight,omitempty"`
	// QueueSlots bounds the tenant's queued-but-not-running jobs; 0
	// means bounded only by the global queue depth.
	QueueSlots int `json:"queue_slots,omitempty"`
	// NetsPerSec is the tenant's sustained admission rate in jobs per
	// second; 0 means unlimited. Enforced by a deficit token bucket, so
	// one oversized batch is admitted whole and paid off before the
	// next.
	NetsPerSec float64 `json:"nets_per_sec,omitempty"`
}

// tenantsFile is the on-disk shape of the -tenants config.
type tenantsFile struct {
	Schema  string         `json:"schema"`
	Tenants []TenantConfig `json:"tenants"`
}

// LoadTenants reads and validates a msrnet-tenants/v1 config file.
func LoadTenants(path string) ([]TenantConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	var f tenantsFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("tenants: decode %s: %w", path, err)
	}
	if f.Schema != TenantsSchema {
		return nil, fmt.Errorf("tenants: %s: schema %q (want %q)", path, f.Schema, TenantsSchema)
	}
	if len(f.Tenants) == 0 {
		return nil, fmt.Errorf("tenants: %s: empty tenant list", path)
	}
	names, keys := map[string]bool{}, map[string]bool{}
	for i := range f.Tenants {
		t := &f.Tenants[i]
		if t.Name == "" {
			return nil, fmt.Errorf("tenants: %s: tenant %d has no name", path, i)
		}
		if t.APIKey == "" {
			return nil, fmt.Errorf("tenants: %s: tenant %q has no api_key", path, t.Name)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("tenants: %s: duplicate tenant name %q", path, t.Name)
		}
		if keys[t.APIKey] {
			return nil, fmt.Errorf("tenants: %s: tenant %q reuses another tenant's api_key", path, t.Name)
		}
		if t.Weight < 0 || t.QueueSlots < 0 || t.NetsPerSec < 0 {
			return nil, fmt.Errorf("tenants: %s: tenant %q has a negative quota", path, t.Name)
		}
		if t.Weight == 0 {
			t.Weight = 1
		}
		names[t.Name], keys[t.APIKey] = true, true
	}
	return f.Tenants, nil
}

// tenantState is one tenant's runtime half: its admission quotas and
// its stride-scheduler queue. All fields are guarded by Daemon.mu.
type tenantState struct {
	cfg TenantConfig

	// queue is the tenant's FIFO of admitted tasks; used counts its
	// slot-reserved (client-submitted, not WAL-recovered) members.
	queue []*task
	used  int

	// pass is the stride-scheduling virtual time: each dequeue advances
	// it by 1/weight, and the scheduler always serves the non-empty
	// queue with the smallest pass — weighted round-robin without
	// starvation.
	pass float64

	// Deficit token bucket for NetsPerSec: admission requires
	// tokens > 0 and then subtracts the whole batch, so tokens may go
	// negative (the deficit); Retry-After is the time for the bucket to
	// refill past zero.
	tokens   float64
	lastFill time.Time

	// Per-tenant observability: admission and completion counters plus
	// an end-to-end latency window, keyed svc/tenant/<name>/*.
	submitted, rejected, completed *obs.Counter
	latE2E                         *obs.WindowHist
}

// newTenantState builds the runtime state for one configured tenant.
func (d *Daemon) newTenantState(cfg TenantConfig, win, iv time.Duration) *tenantState {
	if cfg.Weight <= 0 {
		// LoadTenants defaults this, but Config.Tenants can be built by
		// hand; a zero weight would make the stride 1/w infinite.
		cfg.Weight = 1
	}
	name := cfg.Name
	return &tenantState{
		cfg:       cfg,
		tokens:    burstOf(cfg),
		lastFill:  time.Now(),
		submitted: d.reg.Counter("svc/tenant/" + name + "/jobs_submitted"),
		rejected:  d.reg.Counter("svc/tenant/" + name + "/jobs_rejected"),
		completed: d.reg.Counter("svc/tenant/" + name + "/jobs_completed"),
		latE2E:    d.reg.Window("svc/tenant/"+name+"/latency/e2e", win, iv),
	}
}

// burstOf is the token-bucket capacity: one second of sustained rate,
// but at least one whole job so a slow tenant is never starved of its
// first admission.
func burstOf(cfg TenantConfig) float64 {
	return math.Max(cfg.NetsPerSec, 1)
}

// refillLocked credits tokens for the time since the last fill.
func (ts *tenantState) refillLocked(now time.Time) {
	if ts.cfg.NetsPerSec <= 0 {
		return
	}
	ts.tokens = math.Min(burstOf(ts.cfg),
		ts.tokens+now.Sub(ts.lastFill).Seconds()*ts.cfg.NetsPerSec)
	ts.lastFill = now
}

// retryAfterLocked is the whole-second wait for the bucket to refill
// past zero — the tenant's personal Retry-After, not a global guess.
func (ts *tenantState) retryAfterLocked() time.Duration {
	if ts.cfg.NetsPerSec <= 0 || ts.tokens > 0 {
		return time.Second
	}
	secs := (-ts.tokens + 1) / ts.cfg.NetsPerSec
	d := time.Duration(math.Ceil(secs)) * time.Second
	if d < time.Second {
		d = time.Second
	}
	return d
}

// apiKeyCtx carries the submission's API key (from X-Msrnet-Api-Key or
// a forwarded batch's metadata) across the HTTP boundary to Submit.
type apiKeyCtx struct{}

// WithAPIKey attaches the caller's API key to the request context; the
// HTTP layer and the cluster forward path both use it, and direct
// Submit callers (tests, embedders) may too.
func WithAPIKey(ctx context.Context, key string) context.Context {
	if key == "" {
		return ctx
	}
	return context.WithValue(ctx, apiKeyCtx{}, key)
}

func apiKeyFrom(ctx context.Context) string {
	key, _ := ctx.Value(apiKeyCtx{}).(string)
	return key
}

// tenantFor resolves the submission's tenant. Without a tenants file
// every caller is the unlimited default tenant; with one, a missing or
// unknown API key is a 401.
func (d *Daemon) tenantFor(ctx context.Context) (*tenantState, *SubmitError) {
	if !d.authRequired {
		return d.tenants[DefaultTenant], nil
	}
	key := apiKeyFrom(ctx)
	if key == "" {
		return nil, submitErr(http.StatusUnauthorized, ErrUnauthorized,
			"this daemon requires an API key (X-Msrnet-Api-Key)")
	}
	d.mu.Lock()
	ts := d.byKey[key]
	d.mu.Unlock()
	if ts == nil {
		return nil, submitErr(http.StatusUnauthorized, ErrUnauthorized, "unknown API key")
	}
	return ts, nil
}

// initTenants builds the tenant table at New: the configured tenants,
// or the implicit unlimited default when none are configured.
func (d *Daemon) initTenants(cfgs []TenantConfig, win, iv time.Duration) {
	d.tenants = map[string]*tenantState{}
	d.byKey = map[string]*tenantState{}
	if len(cfgs) == 0 {
		d.tenants[DefaultTenant] = d.newTenantState(TenantConfig{Name: DefaultTenant, Weight: 1}, win, iv)
		return
	}
	d.authRequired = true
	for _, cfg := range cfgs {
		ts := d.newTenantState(cfg, win, iv)
		d.tenants[cfg.Name] = ts
		d.byKey[cfg.APIKey] = ts
	}
}

// tenantByName returns the state for a tenant name, falling back to a
// zero-quota dynamic entry for names that arrive from a WAL written
// under a different tenants file (recovery must not drop their jobs).
func (d *Daemon) tenantByName(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ts := d.tenants[name]
	if ts == nil {
		win, iv := d.sloWindows()
		ts = d.newTenantState(TenantConfig{Name: name, Weight: 1}, win, iv)
		d.tenants[name] = ts
	}
	return ts
}

// reserve is the admission gate: under one lock it checks drain state,
// the global queue depth, the tenant's queue-slot quota and its rate
// bucket, then reserves the batch's slots. The whole batch is admitted
// or none of it — partial admission would make 429 retries recompute
// the admitted half.
func (d *Daemon) reserve(tn *tenantState, n int) *SubmitError {
	if n == 0 {
		return nil
	}
	if err := d.cfg.Faults.Fire(context.Background(), "svc/queue"); err != nil {
		return submitErr(http.StatusServiceUnavailable, ErrInternal, "queue: %v", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.draining.Load() {
		return submitErr(http.StatusServiceUnavailable, ErrShuttingDown, "daemon is draining")
	}
	if n > d.free {
		return submitErr(http.StatusTooManyRequests, ErrQueueFull,
			"queue full: %d jobs submitted, %d slots free (depth %d); retry later",
			n, d.free, d.cfg.QueueDepth)
	}
	if q := tn.cfg.QueueSlots; q > 0 && tn.used+n > q {
		se := submitErr(http.StatusTooManyRequests, ErrQuotaExceeded,
			"tenant %s queue quota exceeded: %d jobs submitted, %d of %d tenant slots free",
			tn.cfg.Name, n, q-tn.used, q)
		se.RetryAfter = time.Second
		return se
	}
	if tn.cfg.NetsPerSec > 0 {
		tn.refillLocked(time.Now())
		if tn.tokens <= 0 {
			se := submitErr(http.StatusTooManyRequests, ErrQuotaExceeded,
				"tenant %s rate quota exceeded: %.3g jobs/sec sustained; in deficit by %.1f jobs",
				tn.cfg.Name, tn.cfg.NetsPerSec, -tn.tokens)
			se.RetryAfter = tn.retryAfterLocked()
			return se
		}
		// Deficit accounting: the whole batch is admitted and paid off
		// over the following seconds, so batch submissions work at any
		// rate without per-job dribbling.
		tn.tokens -= float64(n)
	}
	d.free -= n
	tn.used += n
	d.queueDepth.Set(int64(d.cfg.QueueDepth - d.free))
	return nil
}

// unreserve rolls a reservation back (WAL append failed after reserve).
func (d *Daemon) unreserve(tn *tenantState, n int) {
	d.mu.Lock()
	d.free += n
	tn.used -= n
	d.queueDepth.Set(int64(d.cfg.QueueDepth - d.free))
	d.mu.Unlock()
}

// dispatch hands reserved (or recovered, slot-free) tasks to the stride
// scheduler. Tasks carry their tenant on t.tn.
func (d *Daemon) dispatch(ts []*task) {
	now := time.Now()
	// Queue-wait spans open here — admission is done, a worker is not —
	// and close at dequeue in runTask. Outside d.mu: the span index has
	// its own lock.
	for _, t := range ts {
		_, t.qspan = d.cfg.Spans.Start(t.ctx, "queue")
	}
	d.mu.Lock()
	for _, t := range ts {
		t.enqueued = now
		tn := t.tn
		if len(tn.queue) == 0 {
			// An idling tenant re-enters at the scheduler's current
			// virtual time: its saved-up pass must not let it monopolize
			// the workers, nor its absence penalize it.
			tn.pass = math.Max(tn.pass, d.globalPass)
		}
		tn.queue = append(tn.queue, t)
		d.queued++
	}
	d.mu.Unlock()
	d.qcond.Broadcast()
}

// next blocks until a task is runnable and returns the fair-share pick:
// the front of the non-empty tenant queue with the smallest stride pass.
// It returns nil when the daemon is closed and every queue is empty —
// the worker-exit condition — and releases the task's queue slots as
// the old channel dequeue did.
func (d *Daemon) next() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.queued == 0 {
		if d.closed {
			return nil
		}
		d.qcond.Wait()
	}
	var pick *tenantState
	for _, tn := range d.tenants {
		if len(tn.queue) > 0 && (pick == nil || tn.pass < pick.pass) {
			pick = tn
		}
	}
	t := pick.queue[0]
	pick.queue = pick.queue[1:]
	d.queued--
	d.globalPass = pick.pass
	pick.pass += 1 / pick.cfg.Weight
	if t.slotted {
		d.free++
		pick.used--
		d.queueDepth.Set(int64(d.cfg.QueueDepth - d.free))
	}
	return t
}

// sloWindows resolves the configured SLO window/interval defaults.
func (d *Daemon) sloWindows() (time.Duration, time.Duration) {
	win, iv := d.cfg.SLOWindow, d.cfg.SLOInterval
	if win <= 0 {
		win = obs.DefaultWindow
	}
	if iv <= 0 {
		iv = obs.DefaultInterval
	}
	return win, iv
}

// tenantSnapshot is one tenant's runtime view in tenants.json of a
// postmortem bundle and in tests.
type tenantSnapshot struct {
	Name       string  `json:"name"`
	Weight     float64 `json:"weight"`
	QueueSlots int     `json:"queue_slots,omitempty"`
	NetsPerSec float64 `json:"nets_per_sec,omitempty"`
	Queued     int     `json:"queued"`
	SlotsUsed  int     `json:"slots_used"`
	Tokens     float64 `json:"tokens,omitempty"`
	Pass       float64 `json:"pass"`
	Submitted  int64   `json:"jobs_submitted"`
	Completed  int64   `json:"jobs_completed"`
	Rejected   int64   `json:"jobs_rejected"`
}

// tenantsBody is the JSON shape of the tenants.json bundle file.
type tenantsBody struct {
	Schema       string           `json:"schema"`
	AuthRequired bool             `json:"auth_required"`
	Tenants      []tenantSnapshot `json:"tenants"`
}

// TenantsState snapshots the tenancy runtime: the flight recorder
// captures it into postmortem bundles as tenants.json.
func (d *Daemon) TenantsState() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	body := tenantsBody{Schema: TenantsSchema, AuthRequired: d.authRequired}
	for _, tn := range d.tenants {
		body.Tenants = append(body.Tenants, tenantSnapshot{
			Name: tn.cfg.Name, Weight: tn.cfg.Weight,
			QueueSlots: tn.cfg.QueueSlots, NetsPerSec: tn.cfg.NetsPerSec,
			Queued: len(tn.queue), SlotsUsed: tn.used,
			Tokens: tn.tokens, Pass: tn.pass,
			Submitted: tn.submitted.Value(), Completed: tn.completed.Value(),
			Rejected: tn.rejected.Value(),
		})
	}
	sortTenantSnapshots(body.Tenants)
	return body
}

func sortTenantSnapshots(s []tenantSnapshot) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Name < s[j-1].Name; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
