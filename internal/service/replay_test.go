package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"msrnet/internal/jobstore"
	"msrnet/internal/obs"
)

// openStoreT opens a jobstore in dir and registers cleanup.
func openStoreT(t *testing.T, dir string, reg *obs.Registry) (*jobstore.Store, *jobstore.Replay) {
	t.Helper()
	st, rep, err := jobstore.Open(jobstore.Options{Dir: dir, Reg: reg, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, rep
}

// copyDir snapshots the WAL directory while the daemon is still
// running — the moral equivalent of what kill -9 leaves on disk, since
// Append only returns after fsync.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// strippedJSON marshals a result the way walResult stores it: no cache
// flag, no explain attachment.
func strippedJSON(t *testing.T, r Result) string {
	t.Helper()
	r.Cached = false
	r.Explain = nil
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func recoveredByLabel(jobs []RecoveredJob, label string) *RecoveredJob {
	for i := range jobs {
		if jobs[i].Label == label {
			return &jobs[i]
		}
	}
	return nil
}

// TestCrashReplayLosesNothing is the PR's acceptance e2e: a daemon
// accepts a batch, finishes two jobs and is "killed" mid-solve on the
// third (the WAL dir is snapshotted while the solve blocks — exactly
// the on-disk state a SIGKILL leaves, since appends fsync before
// returning). A second daemon started on that snapshot must restore
// the two finished results byte-identical to the original run and
// re-queue and re-solve the in-flight job — zero lost jobs.
func TestCrashReplayLosesNothing(t *testing.T) {
	reg := obs.New()
	walDir := t.TempDir()
	store, rep := openStoreT(t, walDir, reg)
	if len(rep.Entries) != 0 {
		t.Fatalf("fresh WAL replayed %d entries", len(rep.Entries))
	}
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 8, Reg: reg, Store: store})
	gate := make(chan struct{})
	solve := func(tk *task) Result {
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey,
			ARD: &ARDResult{ARD: 3.25, CritSrc: "s0", CritSink: "p1"}}
	}
	d.execHook = func(ctx context.Context, tk *task) Result {
		if tk.label == "c" {
			<-gate
		}
		return solve(tk)
	}

	req := &Request{Version: SchemaVersion, Jobs: []Job{
		{ID: "a", Mode: "ard", Net: testNetFile(t, 41, 6)},
		{ID: "b", Mode: "ard", Net: testNetFile(t, 42, 6)},
		{ID: "c", Mode: "ard", Net: testNetFile(t, 43, 6)},
	}}
	respCh := make(chan *Response, 1)
	go func() {
		resp, serr := d.Submit(context.Background(), req)
		if serr != nil {
			t.Errorf("submit: %v", serr)
		}
		respCh <- resp
	}()

	// Three accepted records plus two result records = 5 appended; job c
	// is then blocked inside its solve with nothing else in flight, so
	// the snapshot is a quiescent post-fsync image.
	waitFor(t, func() bool { return reg.Counter("wal/appends").Value() == 5 })
	crashDir := copyDir(t, walDir)

	// Let the original run finish — its response is the byte-identity
	// reference for what recovery must serve.
	close(gate)
	resp := <-respCh
	if resp == nil {
		t.Fatal("original submit failed")
	}

	// "Restart": a fresh daemon on the crash image.
	reg2 := obs.New()
	store2, rep2 := openStoreT(t, crashDir, reg2)
	if len(rep2.Entries) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(rep2.Entries))
	}
	d2 := newTestDaemon(t, Config{Workers: 1, QueueDepth: 8, Reg: reg2, Store: store2})
	d2.execHook = func(ctx context.Context, tk *task) Result { return solve(tk) }
	requeued, restored := d2.Recover(rep2)
	if requeued != 1 || restored != 2 {
		t.Fatalf("Recover = (%d requeued, %d restored), want (1, 2)", requeued, restored)
	}
	waitFor(t, func() bool {
		jobs := d2.rec.list("")
		for i := range jobs {
			if jobs[i].State != "done" {
				return false
			}
		}
		return len(jobs) == 3
	})

	// Zero lost jobs, and the restored results are byte-identical to the
	// original run (modulo the per-delivery cache/explain attachments
	// the WAL never stores). The re-solved job matches too, because jobs
	// are deterministic by content.
	recovered := d2.rec.list("")
	for i, label := range []string{"a", "b", "c"} {
		j := recoveredByLabel(recovered, label)
		if j == nil || j.Result == nil {
			t.Fatalf("job %s missing from recovery", label)
		}
		got, err := json.Marshal(j.Result)
		if err != nil {
			t.Fatal(err)
		}
		if want := strippedJSON(t, resp.Results[i]); string(got) != want {
			t.Errorf("job %s not byte-identical after replay:\n got %s\nwant %s", label, got, want)
		}
	}

	// Fetching /v1/recovered is delivery: the done results are acked and
	// leave the table; a second fetch is empty.
	rr := httptest.NewRecorder()
	d2.handleRecovered(rr, httptest.NewRequest("GET", "/v1/recovered", nil))
	var body recoveredBody
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Schema != RecoveredSchema || len(body.Recovered) != 3 {
		t.Fatalf("GET /v1/recovered = schema %q, %d jobs; want %q, 3",
			body.Schema, len(body.Recovered), RecoveredSchema)
	}
	rr = httptest.NewRecorder()
	d2.handleRecovered(rr, httptest.NewRequest("GET", "/v1/recovered", nil))
	body = recoveredBody{}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Recovered) != 0 {
		t.Fatalf("second fetch returned %d jobs, want 0 (fetch acks)", len(body.Recovered))
	}
}

// TestDegradedResultReplaysForExactResolve: a WAL holding a degraded
// result replays it as pending (marked degraded_resolve), and recovery
// re-solves it exactly — the ε-relaxed answer is never served forever.
func TestDegradedResultReplaysForExactResolve(t *testing.T) {
	dir := t.TempDir()
	st, _, err := jobstore.Open(jobstore.Options{Dir: dir, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	job, err := json.Marshal(Job{ID: "g", Mode: "ard", Net: testNetFile(t, 44, 6)})
	if err != nil {
		t.Fatal(err)
	}
	acc := &jobstore.Record{Type: jobstore.TypeAccepted, Tenant: "", Label: "g", Job: job}
	if err := st.Append(context.Background(), acc); err != nil {
		t.Fatal(err)
	}
	degraded, err := json.Marshal(Result{ID: "g", Status: StatusOK, Degraded: true,
		DegradedReason: "deadline", ARD: &ARDResult{ARD: 9.5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(context.Background(), &jobstore.Record{
		Type: jobstore.TypeResult, UID: acc.UID, Result: degraded, Degraded: true}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rep := openStoreT(t, dir, obs.New())
	if len(rep.Entries) != 1 || !rep.Entries[0].Pending() || !rep.Entries[0].Degraded {
		t.Fatalf("degraded entry should replay pending+degraded, got %+v", rep.Entries)
	}
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 4, Store: st2})
	d.execHook = func(ctx context.Context, tk *task) Result {
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey, ARD: &ARDResult{ARD: 9.0}}
	}
	requeued, restored := d.Recover(rep)
	if requeued != 1 || restored != 0 {
		t.Fatalf("Recover = (%d, %d), want (1, 0)", requeued, restored)
	}
	jobs := d.rec.list("")
	if len(jobs) != 1 || !jobs[0].Resolved {
		t.Fatalf("recovered job not marked degraded_resolve: %+v", jobs)
	}
	waitFor(t, func() bool { return d.rec.list("")[0].State == "done" })
	got := d.rec.list("")[0].Result
	if got.Degraded || got.ARD == nil || got.ARD.ARD != 9.0 {
		t.Fatalf("re-solve should be exact, got %+v", got)
	}
}
