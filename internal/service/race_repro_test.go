package service

import (
	"context"
	"sync"
	"testing"

	"msrnet/internal/obs"
)

// TestExplainListRaceRepro hammers List while jobs finish.
func TestExplainListRaceRepro(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 4, QueueDepth: 64, Reg: obs.New()})
	net := testNetFile(t, 1, 6)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.table.List()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if _, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "r", Mode: "ard", Net: net})); serr != nil {
			t.Fatalf("submit: %v", serr)
		}
	}
	close(stop)
	wg.Wait()
}
