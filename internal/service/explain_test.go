package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"msrnet/internal/obs"
	"msrnet/internal/obs/reqctx"
	"msrnet/internal/obs/trace"
)

// TestExplainOnResult: a request with Explain set gets a complete
// msrnet-explain/v1 report per result; the same submission without the
// flag gets none (so the default wire format is untouched).
func TestExplainOnResult(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2, Reg: obs.New()})
	net := testNetFile(t, 1, 10)

	req := oneJobRequest(Job{ID: "exp-1", Mode: "both", Net: net})
	req.Explain = true
	ctx := reqctx.WithTraceID(context.Background(), "trace-explain-test")
	resp, serr := d.Submit(ctx, req)
	if serr != nil {
		t.Fatal(serr)
	}
	r := resp.Results[0]
	if r.Status != StatusOK {
		t.Fatalf("result: %+v", r)
	}
	e := r.Explain
	if e == nil {
		t.Fatal("Explain missing with Request.Explain set")
	}
	if e.Schema != ExplainSchema {
		t.Errorf("schema = %q, want %q", e.Schema, ExplainSchema)
	}
	if e.TraceID != "trace-explain-test" {
		t.Errorf("trace id = %q", e.TraceID)
	}
	if e.Label != "exp-1" || e.State != JobDone || e.Outcome != OutcomeOK {
		t.Errorf("identity: %+v", e)
	}
	if e.Solve == nil {
		t.Fatal("solve shape missing on a msri job")
	}
	if e.Solve.NodesVisited == 0 || e.Solve.PruneCalls == 0 || e.Solve.MeanSetSize <= 0 {
		t.Errorf("solve under-reported: %+v", e.Solve)
	}
	if len(e.Solve.PruneSites) == 0 {
		t.Error("prune-site breakdown empty")
	}
	if e.TotalMs <= 0 || e.TotalMs < e.SolveMs {
		t.Errorf("timing inconsistent: total=%g solve=%g queue=%g", e.TotalMs, e.SolveMs, e.QueueWaitMs)
	}

	// Same job without the flag: no explain, and the cached result stays
	// undecorated.
	resp2, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "exp-2", Mode: "both", Net: net}))
	if serr != nil {
		t.Fatal(serr)
	}
	if resp2.Results[0].Explain != nil {
		t.Error("explain leaked onto an unasking request")
	}
}

// TestExplainCacheHit: a cache-hit job gets a report marked Cached with
// no queue/solve time, and it still lands in the finished ring.
func TestExplainCacheHit(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, CacheSize: 8, Reg: obs.New()})
	net := testNetFile(t, 2, 8)
	job := Job{ID: "hit", Mode: "msri", Net: net}

	if _, serr := d.Submit(context.Background(), oneJobRequest(job)); serr != nil {
		t.Fatal(serr)
	}
	req := oneJobRequest(job)
	req.Explain = true
	resp, serr := d.Submit(context.Background(), req)
	if serr != nil {
		t.Fatal(serr)
	}
	r := resp.Results[0]
	if !r.Cached {
		t.Fatalf("expected a cache hit: %+v", r)
	}
	e := r.Explain
	if e == nil || !e.Cached || e.Outcome != OutcomeOK || e.SolveMs != 0 {
		t.Fatalf("cache-hit explain: %+v", e)
	}
	if _, recent := d.table.List(); len(recent) < 2 {
		t.Errorf("finished ring has %d entries, want ≥ 2", len(recent))
	}
}

// TestDebugJobsEndpoints: the full introspection surface over HTTP —
// list, fetch by job id, fetch by trace id, 404 on unknown.
func TestDebugJobsEndpoints(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2, Reg: obs.New()})
	srv := httptest.NewServer(reqctx.Middleware(d.Handler()))
	defer srv.Close()

	body, _ := json.Marshal(oneJobRequest(Job{ID: "dbg", Mode: "msri", Net: testNetFile(t, 3, 8)}))
	hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs?explain=1", strings.NewReader(string(body)))
	hreq.Header.Set(reqctx.HeaderTraceID, "trace-dbg-1")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	e := resp.Results[0].Explain
	if e == nil {
		t.Fatal("?explain=1 did not produce a report")
	}
	if e.TraceID != "trace-dbg-1" {
		t.Fatalf("trace id on report = %q", e.TraceID)
	}

	var list jobListBody
	getJSON(t, srv.URL+"/debug/jobs", &list)
	if list.Schema != ExplainSchema || len(list.Recent) == 0 {
		t.Fatalf("job list: %+v", list)
	}

	var byJob Explain
	getJSON(t, srv.URL+"/debug/jobs/"+e.JobID, &byJob)
	if byJob.JobID != e.JobID || byJob.TraceID != "trace-dbg-1" {
		t.Errorf("by job id: %+v", byJob)
	}

	var byTrace Explain
	getJSON(t, srv.URL+"/debug/jobs/trace-dbg-1", &byTrace)
	if byTrace.JobID != e.JobID {
		t.Errorf("by trace id: %+v", byTrace)
	}

	if resp, err := http.Get(srv.URL + "/debug/jobs/nonexistent"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown id: HTTP %d, want 404", resp.StatusCode)
		}
	}
}

// TestReadyzDrainAndSaturation: /readyz answers 200 when idle, 503
// with a reason once StartDrain is called (while /healthz stays 200),
// and 503 while the queue is saturated.
func TestReadyzDrainAndSaturation(t *testing.T) {
	t.Run("drain", func(t *testing.T) {
		d := newTestDaemon(t, Config{Workers: 1, Reg: obs.New()})
		srv := httptest.NewServer(d.Handler())
		defer srv.Close()
		if code, _ := getStatus(t, srv.URL+"/readyz"); code != http.StatusOK {
			t.Fatalf("idle readyz = %d", code)
		}
		d.StartDrain()
		code, body := getStatus(t, srv.URL+"/readyz")
		if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
			t.Fatalf("draining readyz = %d %q", code, body)
		}
		if code, _ := getStatus(t, srv.URL+"/healthz"); code != http.StatusOK {
			t.Fatalf("healthz flipped during drain: %d", code)
		}
		// Admission is closed: a fresh submission is rejected whole.
		_, serr := d.Submit(context.Background(), oneJobRequest(Job{Mode: "msri", Net: testNetFile(t, 4, 6)}))
		if serr == nil || serr.Code != ErrShuttingDown {
			t.Fatalf("submit during drain: %+v", serr)
		}
	})

	t.Run("saturation", func(t *testing.T) {
		reg := obs.New()
		d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1, Reg: reg})
		block := make(chan struct{})
		d.execHook = func(ctx context.Context, t *task) Result {
			<-block
			return Result{ID: t.label, Status: StatusOK, NetKey: t.netKey}
		}
		defer close(block)
		srv := httptest.NewServer(d.Handler())
		defer srv.Close()

		// One job occupies the worker, the next fills the single queue
		// slot. Wait for the first to actually start before submitting
		// the second: if both were queued at once, the second would be
		// rejected (queue_full counts queued-not-running jobs) and the
		// queue would drain without ever reading as saturated.
		net := testNetFile(t, 5, 6)
		go d.Submit(context.Background(), oneJobRequest(Job{ID: "s0", Mode: "msri", Net: net,
			Options: JobOptions{Spec: 1}}))
		waitFor(t, func() bool {
			active, _ := d.table.List()
			for _, e := range active {
				if e.State == JobRunning {
					return true
				}
			}
			return false
		})
		go d.Submit(context.Background(), oneJobRequest(Job{ID: "s1", Mode: "msri", Net: net,
			Options: JobOptions{Spec: 2}}))
		waitFor(t, func() bool {
			ok, reason := d.Ready()
			return !ok && reason == "queue_saturated"
		})
		code, body := getStatus(t, srv.URL+"/readyz")
		if code != http.StatusServiceUnavailable || !strings.Contains(body, "queue_saturated") {
			t.Fatalf("saturated readyz = %d %q", code, body)
		}
	})
}

// TestSLOWindowsPerOutcome: finished jobs land in the latency windows
// of their outcome class, visible in the JSON snapshot and the
// Prometheus rendering.
func TestSLOWindowsPerOutcome(t *testing.T) {
	reg := obs.New()
	d := newTestDaemon(t, Config{Workers: 1, JobTimeout: 50 * time.Millisecond,
		DegradeHeadroom: -1, Reg: reg})
	ok := make(chan struct{}, 1)
	d.execHook = func(ctx context.Context, t *task) Result {
		select {
		case <-ok:
			return Result{ID: t.label, Status: StatusOK, NetKey: t.netKey}
		case <-ctx.Done():
			return Result{ID: t.label, Status: StatusError, Code: ErrDeadlineExceeded, NetKey: t.netKey}
		}
	}

	net := testNetFile(t, 6, 6)
	ok <- struct{}{}
	if _, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "fast", Mode: "msri", Net: net})); serr != nil {
		t.Fatal(serr)
	}
	// Second job: the hook blocks past the deadline → deadline_exceeded
	// → the error class.
	d.Submit(context.Background(), oneJobRequest(Job{ID: "slow", Mode: "msri", Net: net,
		Options: JobOptions{Spec: 99}}))

	snap := reg.Snapshot()
	if q, found := snap.Quantiles["svc/latency/e2e/ok"]; !found || q.Count == 0 {
		t.Errorf("ok e2e window: %+v (found=%t)", q, found)
	}
	if q, found := snap.Quantiles["svc/latency/queue/ok"]; !found || q.Count == 0 {
		t.Errorf("ok queue window: %+v (found=%t)", q, found)
	}
	if q, found := snap.Quantiles["svc/latency/e2e/error"]; !found || q.Count == 0 {
		t.Errorf("error e2e window: %+v (found=%t)", q, found)
	}
	// The Prometheus rendering exposes the same windows as summaries.
	rec := httptest.NewRecorder()
	d.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	text := rec.Body.String()
	for _, want := range []string{
		`msrnet_svc_latency_e2e_ok{quantile="0.99"}`,
		`msrnet_svc_latency_solve_ok{quantile="0.5"}`,
		"msrnet_svc_latency_e2e_error_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugTraceEndpoint: with a configured tracer the endpoint serves
// msrnet-trace-events/v1 JSON whose events carry the job's trace id;
// without one it 404s.
func TestDebugTraceEndpoint(t *testing.T) {
	tcr := trace.New(1 << 12)
	d := newTestDaemon(t, Config{Workers: 1, Reg: obs.New(), Tracer: tcr})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	ctx := reqctx.WithTraceID(context.Background(), "trace-ring-1")
	if _, serr := d.Submit(ctx, oneJobRequest(Job{ID: "tr", Mode: "msri", Net: testNetFile(t, 7, 8)})); serr != nil {
		t.Fatal(serr)
	}
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Events []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.Events {
		if args, k := ev["args"].(map[string]any); k && args["trace_id"] == "trace-ring-1" {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no ring event tagged with the job's trace id (%d events)", len(doc.Events))
	}

	d2 := newTestDaemon(t, Config{Workers: 1, Reg: obs.New()})
	rec := httptest.NewRecorder()
	d2.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("tracerless /debug/trace = %d, want 404", rec.Code)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}
