package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"msrnet/internal/core"
	"msrnet/internal/netio"
	"msrnet/internal/obs"
)

// exactBestARD computes the exact minimum ARD of a net file — the
// ground truth degraded results are bounded against.
func exactBestARD(t *testing.T, f netio.NetFile) (float64, error) {
	t.Helper()
	tr, tech, err := netio.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Optimize(tr.RootAt(tr.Terminals()[0]), tech, core.Options{Repeaters: true})
	if err != nil {
		return 0, err
	}
	best, err := out.Suite.MinARD()
	if err != nil {
		return 0, err
	}
	return best.ARD, nil
}

// TestDegradeQueuePressure: with the whole deadline reserved as
// headroom, every msri job skips the exact attempt and degrades
// immediately. The degraded result must be flagged, within the
// documented ε·PruneCalls bound of exact, and never cached.
func TestDegradeQueuePressure(t *testing.T) {
	const eps = 0.05
	reg := obs.New()
	d := newTestDaemon(t, Config{
		Workers: 1, QueueDepth: 8, CacheSize: 8,
		JobTimeout:      10 * time.Second,
		DegradeHeadroom: 10 * time.Second, // remaining < headroom at the worker, always
		CoarseEps:       eps,
		Reg:             reg,
	})
	net := testNetFile(t, 900, 8)
	exact, err := exactBestARD(t, net)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		resp, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "p", Mode: "msri", Net: net}))
		if serr != nil {
			t.Fatal(serr)
		}
		r := resp.Results[0]
		if r.Status != StatusOK {
			t.Fatalf("round %d: %+v", round, r)
		}
		if !r.Degraded || r.DegradedReason != "queue_pressure" {
			t.Fatalf("round %d: degraded=%t reason=%q, want queue_pressure", round, r.Degraded, r.DegradedReason)
		}
		// Degraded results are never cached: round 2 must recompute.
		if r.Cached {
			t.Fatalf("round %d: degraded result served from cache", round)
		}
		// Never silently truncated: the full result shape is present.
		if r.Opt == nil || len(r.Opt.Suite) == 0 || len(r.Opt.Assign.Repeaters) == 0 && r.Opt.Chosen.Repeaters > 0 {
			t.Fatalf("round %d: degraded result truncated: %+v", round, r.Opt)
		}
		if r.Opt.CoarseEps != eps {
			t.Fatalf("round %d: CoarseEps = %g, want %g", round, r.Opt.CoarseEps, eps)
		}
		// Accuracy bound: within ε per prune call of the exact optimum,
		// and never better than it.
		bound := exact + eps*float64(r.Opt.Stats.PruneCalls) + 1e-9
		if r.Opt.Chosen.ARD > bound {
			t.Fatalf("round %d: degraded ARD %.9g exceeds bound %.9g (exact %.9g, %d prunes)",
				round, r.Opt.Chosen.ARD, bound, exact, r.Opt.Stats.PruneCalls)
		}
		if r.Opt.Chosen.ARD < exact-1e-9 {
			t.Fatalf("round %d: degraded ARD %.9g beats exact %.9g", round, r.Opt.Chosen.ARD, exact)
		}
	}
	if got := reg.Counter("svc/jobs_degraded").Value(); got != 2 {
		t.Fatalf("svc/jobs_degraded = %d, want 2", got)
	}
	if got := reg.Counter("svc/cache_inserts").Value(); got != 0 {
		t.Fatalf("svc/cache_inserts = %d, want 0 (degraded results must not be cached)", got)
	}
}

// TestDegradeSoftDeadline: a net whose exact optimization far exceeds
// the soft deadline (deadline − headroom ≈ 50ms, exact ≈ hundreds of
// ms) falls back to the coarse retry within the reserved headroom.
func TestDegradeSoftDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping multi-hundred-ms optimization")
	}
	reg := obs.New()
	d := newTestDaemon(t, Config{
		Workers: 1, QueueDepth: 8,
		JobTimeout:      10 * time.Second,
		DegradeHeadroom: 10*time.Second - 100*time.Millisecond,
		CoarseEps:       0.1,
		Reg:             reg,
	})
	// This net's exact optimization runs ~30× longer than the 100ms soft
	// window, so the exact attempt reliably expires there (a slower
	// machine only makes it more reliable), while its coarse run at
	// ε=0.1 finishes in a few ms.
	net := testNetFile(t, 902, 24)
	resp, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "s", Mode: "msri", Net: net}))
	if serr != nil {
		t.Fatal(serr)
	}
	r := resp.Results[0]
	if r.Status != StatusOK {
		t.Fatalf("%+v", r)
	}
	if !r.Degraded || r.DegradedReason != "soft_deadline" {
		t.Fatalf("degraded=%t reason=%q, want soft_deadline", r.Degraded, r.DegradedReason)
	}
	if r.Opt == nil || len(r.Opt.Suite) == 0 {
		t.Fatalf("degraded result truncated: %+v", r.Opt)
	}
}

// TestDegradeDisabled: negative headroom turns the policy off — a job
// whose exact optimization cannot fit the deadline fails with a typed,
// retryable deadline_exceeded instead of a truncated or degraded
// result.
func TestDegradeDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping deadline-overrun optimization")
	}
	d := newTestDaemon(t, Config{
		Workers: 1, QueueDepth: 8,
		JobTimeout:      200 * time.Millisecond,
		DegradeHeadroom: -1,
	})
	net := testNetFile(t, 902, 24) // exact runs seconds, ≫ the 200ms deadline
	resp, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: "d", Mode: "msri", Net: net}))
	if serr != nil {
		t.Fatal(serr)
	}
	r := resp.Results[0]
	if r.Status != StatusError || r.Code != ErrDeadlineExceeded {
		t.Fatalf("got %+v, want deadline_exceeded", r)
	}
	if !r.Retryable {
		t.Fatal("deadline_exceeded must be retryable")
	}
	if r.Degraded || r.Opt != nil {
		t.Fatalf("disabled degradation produced output: %+v", r)
	}
}

// TestShedLoad: a job that spent its whole deadline queued behind a
// stalled worker is shed at dequeue with a retryable shed_load instead
// of burning the worker on a doomed attempt.
func TestShedLoad(t *testing.T) {
	reg := obs.New()
	d := newTestDaemon(t, Config{
		Workers: 1, QueueDepth: 8,
		JobTimeout: 100 * time.Millisecond,
		ShedMargin: 50 * time.Millisecond, // j0 dequeues instantly (~100ms left); j1 waits out j0's deadline and arrives with ~0
		Reg:        reg,
	})
	gate := make(chan struct{})
	var once sync.Once
	d.execHook = func(ctx context.Context, tk *task) Result {
		once.Do(func() { <-gate }) // stall the first job; the second sits queued past its deadline
		return Result{ID: tk.label, Status: StatusOK, NetKey: tk.netKey}
	}
	defer close(gate)

	net := testNetFile(t, 902, 6)
	var wg sync.WaitGroup
	results := make([]Result, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, serr := d.Submit(context.Background(), oneJobRequest(Job{ID: fmt.Sprintf("j%d", i), Mode: "ard", Net: net}))
			if serr != nil {
				t.Errorf("j%d: %v", i, serr)
				return
			}
			results[i] = resp.Results[0]
		}(i)
		if i == 0 {
			// Make sure j0 reaches the worker before j1 is enqueued.
			waitFor(t, func() bool { return reg.Counter("svc/jobs_submitted").Value() == 1 })
			time.Sleep(5 * time.Millisecond)
		}
	}
	wg.Wait()

	shed := 0
	for _, r := range results {
		if r.Code == ErrShedLoad {
			shed++
			if !r.Retryable {
				t.Error("shed_load must be retryable")
			}
		}
	}
	if shed != 1 {
		t.Fatalf("%d jobs shed, want 1 (results: %+v)", shed, results)
	}
	if got := reg.Counter("svc/jobs_shed").Value(); got != 1 {
		t.Fatalf("svc/jobs_shed = %d, want 1", got)
	}
}
