package service

import (
	"sort"
	"sync"

	"msrnet/internal/core"
	"msrnet/internal/obs/spans"
	"msrnet/internal/solveprof"
)

// ExplainSchema identifies the JSON layout of a per-job explain report,
// so tooling can detect format drift the same way it does for
// msrnet-metrics/v1 and msrnet-trace-events/v1.
const ExplainSchema = "msrnet-explain/v1"

// Job lifecycle states surfaced by the introspection endpoints.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
)

// Outcome classes. Every finished job lands in exactly one; the
// per-class SLO latency windows (svc/latency/{queue,solve,e2e}/<class>)
// are keyed by the same strings.
const (
	OutcomeOK       = "ok"
	OutcomeDegraded = "degraded"
	OutcomeShed     = "shed"
	OutcomeError    = "error"
	// OutcomeRejected marks jobs the admission path turned away before
	// they ever queued: queue-saturation 429s and draining rejections.
	OutcomeRejected = "rejected"
	// OutcomeForwarded marks jobs this daemon could not admit and handed
	// to a fleet peer by work-stealing; the peer's own report (with
	// forwarded_from set) carries the solve.
	OutcomeForwarded = "forwarded"
)

// outcomeClasses enumerates the classes so the daemon can pre-build
// one latency window per class (no allocation on the job path).
var outcomeClasses = []string{OutcomeOK, OutcomeDegraded, OutcomeShed, OutcomeError, OutcomeRejected, OutcomeForwarded}

// outcomeOf classifies a finished result.
func outcomeOf(res Result) string {
	switch {
	case res.Status == StatusOK && res.Degraded:
		return OutcomeDegraded
	case res.Status == StatusOK:
		return OutcomeOK
	case res.Code == ErrShedLoad:
		return OutcomeShed
	default:
		return OutcomeError
	}
}

// Explain is the per-job solve report: where one job's wall-clock time
// went and what the dynamic program did to it. A report is returned on
// the job's Result when the request asks (?explain=1), kept in a
// bounded ring for GET /debug/jobs/{id}, and listed live while the job
// is still queued or running.
type Explain struct {
	Schema string `json:"schema"`
	// JobID is the daemon-assigned identity ("j<seq>"), unique per
	// executed job within one daemon lifetime; Label echoes the client's
	// job ID (or batch index). Seq orders reports.
	JobID string `json:"job_id"`
	Seq   int64  `json:"seq"`
	Label string `json:"label"`
	// TraceID is the request-scoped correlation ID (X-Msrnet-Trace-Id):
	// the same string appears on the daemon's slog lines and on the ring
	// tracer's events for this job.
	TraceID string `json:"trace_id,omitempty"`
	NetKey  string `json:"net_key,omitempty"`
	// Tenant is the submitting tenant's name (multi-tenant daemons;
	// "default" otherwise).
	Tenant string `json:"tenant,omitempty"`
	Mode   string `json:"mode"`
	State  string `json:"state"`
	// Replayed marks a job re-queued from the write-ahead job store at
	// startup rather than submitted over HTTP this run.
	Replayed bool `json:"replayed,omitempty"`
	// Outcome is ok/degraded/shed/error once State is done.
	Outcome string `json:"outcome,omitempty"`
	Code    string `json:"code,omitempty"`
	// Cached marks a result served from the LRU without queueing.
	Cached bool `json:"cached,omitempty"`
	// ServedBy is the fleet member that served this job's bytes: the
	// answering daemon's cluster ID, the shard owner's on a remote cache
	// hit, or the stealing peer's when this daemon forwarded the batch
	// (outcome=forwarded). Empty on clusterless daemons.
	ServedBy string `json:"served_by,omitempty"`
	// ForwardedFrom is the peer that handed this job over by
	// work-stealing, set on the executing daemon's report.
	ForwardedFrom string `json:"forwarded_from,omitempty"`

	// Where the time went: queue wait vs. solve vs. end-to-end (their
	// difference is scheduling and encode overhead).
	QueueWaitMs float64 `json:"queue_wait_ms"`
	SolveMs     float64 `json:"solve_ms"`
	TotalMs     float64 `json:"total_ms"`

	Solve       *SolveExplain   `json:"solve,omitempty"`
	Degradation *DegradeExplain `json:"degradation,omitempty"`

	// Profile is the msrnet-solveprof/v1 candidate-lifecycle waste
	// profile, present only when the request asked (?profile=1). It
	// rides on the explain report so the same artifact reaches the
	// result, GET /debug/jobs/{id} and postmortem bundles.
	Profile *solveprof.Profile `json:"profile,omitempty"`

	// Spans summarizes this process's span index for the job's trace at
	// completion: span count, cross-process hop count, and self-time per
	// segment class — a one-glance answer to "where did this trace spend
	// its time HERE" without running the fleet collector.
	Spans *spans.Summary `json:"spans,omitempty"`
}

// SolveExplain is the dynamic-program shape of the job: candidate
// volume, per-site prune effectiveness and PWL complexity — the numbers
// that say WHY a job was slow, not just that it was.
type SolveExplain struct {
	NodesVisited     int     `json:"nodes_visited"`
	SolutionsCreated int     `json:"solutions_created"`
	MaxSetSize       int     `json:"max_set_size"`
	MeanSetSize      float64 `json:"mean_set_size"`
	MaxSegs          int     `json:"max_pwl_segments"`
	PruneCalls       int     `json:"prune_calls"`
	Dropped          int     `json:"dropped"`
	// PruneSites breaks the pruning down by dominance-rule call site
	// (drivers, wire_widths, join, repeater).
	PruneSites map[string]core.PruneSiteStats `json:"prune_sites,omitempty"`
}

// DegradeExplain records a deadline-pressure fallback decision and its
// accuracy price.
type DegradeExplain struct {
	// Reason is queue_pressure (job reached a worker with too little
	// budget for an exact attempt) or soft_deadline (the exact attempt
	// expired and the reserved headroom ran the coarse retry).
	Reason string `json:"reason"`
	// CoarseEps is the dominance relaxation the coarse run used.
	CoarseEps float64 `json:"coarse_eps"`
	// ErrorBound is CoarseEps × the run's prune calls: the reported ARD
	// exceeds the exact optimum by at most this many nanoseconds.
	ErrorBound float64 `json:"error_bound_ns"`
}

// solveExplain converts the DP's stats into the report shape.
func solveExplain(s core.Stats) *SolveExplain {
	se := &SolveExplain{
		NodesVisited:     s.NodesVisited,
		SolutionsCreated: s.SolutionsCreated,
		MaxSetSize:       s.MaxSetSize,
		MaxSegs:          s.MaxSegs,
		PruneCalls:       s.PruneCalls,
		Dropped:          s.Dropped,
		PruneSites:       s.PruneSites,
	}
	if s.NodesVisited > 0 {
		se.MeanSetSize = float64(s.SetSizeSum) / float64(s.NodesVisited)
	}
	return se
}

// jobTable tracks explain reports: live jobs (queued/running) by id
// plus a bounded ring of the most recently finished ones. All methods
// are safe for concurrent use; reads return copies so handlers never
// serialize a report a worker is still writing.
type jobTable struct {
	mu     sync.Mutex
	cap    int
	done   []*Explain // circular, next is the oldest slot
	next   int
	filled bool
	active map[string]*Explain
}

// defaultExplainRing bounds the finished-report ring when the config
// does not say otherwise.
const defaultExplainRing = 256

func newJobTable(capacity int) *jobTable {
	if capacity <= 0 {
		capacity = defaultExplainRing
	}
	return &jobTable{
		cap:    capacity,
		done:   make([]*Explain, capacity),
		active: map[string]*Explain{},
	}
}

// start registers a queued job.
func (t *jobTable) start(e *Explain) {
	t.mu.Lock()
	t.active[e.JobID] = e
	t.mu.Unlock()
}

// setRunning marks a queued job as dequeued.
func (t *jobTable) setRunning(id string) {
	t.mu.Lock()
	if e, ok := t.active[id]; ok {
		e.State = JobRunning
	}
	t.mu.Unlock()
}

// detach takes a live job out of the active table, returning sole
// ownership of its report to the caller: once detached, no List/Get
// reader can reach the pointer, so the finish path may fill the
// completion fields without racing concurrent readers. Retire the
// finished report with record.
func (t *jobTable) detach(id string) {
	t.mu.Lock()
	delete(t.active, id)
	t.mu.Unlock()
}

// record adds a completed report to the finished ring — jobs that
// never queued (cache hits) and detached jobs whose completion fields
// are filled. Reports are immutable after record.
func (t *jobTable) record(e *Explain) {
	t.mu.Lock()
	t.push(e)
	t.mu.Unlock()
}

func (t *jobTable) push(e *Explain) {
	t.done[t.next] = e
	t.next++
	if t.next == t.cap {
		t.next, t.filled = 0, true
	}
}

// List returns the live jobs (by sequence) and the finished ring
// (newest first), as copies.
func (t *jobTable) List() (active, recent []Explain) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.active {
		active = append(active, *e)
	}
	sort.Slice(active, func(i, j int) bool { return active[i].Seq < active[j].Seq })
	n := t.next
	if t.filled {
		n = t.cap
	}
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + t.cap) % t.cap
		if t.done[idx] != nil {
			recent = append(recent, *t.done[idx])
		}
	}
	return active, recent
}

// Get finds a report by job id, or — when no job id matches — the most
// recent report carrying the given trace id, so a client can look a job
// up by either handle.
func (t *jobTable) Get(id string) (Explain, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.active[id]; ok {
		return *e, true
	}
	n := t.next
	if t.filled {
		n = t.cap
	}
	var byTrace *Explain
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + t.cap) % t.cap
		e := t.done[idx]
		if e == nil {
			continue
		}
		if e.JobID == id {
			return *e, true
		}
		if byTrace == nil && e.TraceID != "" && e.TraceID == id {
			byTrace = e
		}
	}
	for _, e := range t.active {
		if e.TraceID != "" && e.TraceID == id && (byTrace == nil || e.Seq > byTrace.Seq) {
			byTrace = e
		}
	}
	if byTrace != nil {
		return *byTrace, true
	}
	return Explain{}, false
}
