package service

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/netio"
	"msrnet/internal/obs"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// Config tunes the daemon.
type Config struct {
	// Workers is the worker-pool size; defaults to GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// submissions beyond it are rejected with queue_full (HTTP 429).
	// Defaults to 4×Workers.
	QueueDepth int
	// JobTimeout is the per-job deadline; a job that exceeds it returns
	// deadline_exceeded. Zero means no per-job deadline.
	JobTimeout time.Duration
	// CacheSize is the LRU result-cache capacity in entries; ≤ 0
	// disables caching. Defaults are applied by msrnetd, not here.
	CacheSize int
	// Reg receives the daemon's metrics and per-job phase spans; may be
	// nil.
	Reg *obs.Registry
	// Logger receives job-level logs; slog.Default when nil.
	Logger *slog.Logger
}

// LatencyBounds are the millisecond bucket bounds of the svc/queue_wait_ms
// and svc/job_ms histograms.
var LatencyBounds = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Daemon owns the job queue, worker pool and result cache. Create with
// New, submit with Submit (or through Handler's HTTP surface), and
// Close to drain.
type Daemon struct {
	cfg   Config
	reg   *obs.Registry
	log   *slog.Logger
	cache *resultCache

	jobs chan *task
	wg   sync.WaitGroup

	mu     sync.Mutex
	free   int // remaining queue slots
	closed bool

	submitted, completed, failed *obs.Counter
	rejected, deadlines, panics  *obs.Counter
	queueDepth, workers          *obs.Gauge
	queueWait, jobDur            *obs.Histogram

	// execHook replaces exec in tests that need a slow or exploding
	// job body without building an adversarial net.
	execHook func(ctx context.Context, t *task) Result
}

// task is one unit of queued work: a validated, decoded job plus its
// completion signal.
type task struct {
	job    *Job
	idx    int
	label  string
	netKey string
	key    string
	tr     *topo.Tree
	tech   buslib.Tech

	ctx      context.Context
	cancel   context.CancelFunc
	enqueued time.Time

	res  Result
	done chan struct{}
}

// New builds the daemon and starts its workers.
func New(cfg Config) *Daemon {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	reg := cfg.Reg
	d := &Daemon{
		cfg:        cfg,
		reg:        reg,
		log:        cfg.Logger,
		cache:      newResultCache(cfg.CacheSize, reg),
		jobs:       make(chan *task, cfg.QueueDepth),
		free:       cfg.QueueDepth,
		submitted:  reg.Counter("svc/jobs_submitted"),
		completed:  reg.Counter("svc/jobs_completed"),
		failed:     reg.Counter("svc/jobs_failed"),
		rejected:   reg.Counter("svc/jobs_rejected"),
		deadlines:  reg.Counter("svc/jobs_deadline_exceeded"),
		panics:     reg.Counter("svc/panics_recovered"),
		queueDepth: reg.Gauge("svc/queue_depth"),
		workers:    reg.Gauge("svc/workers"),
		queueWait:  reg.Histogram("svc/queue_wait_ms", LatencyBounds),
		jobDur:     reg.Histogram("svc/job_ms", LatencyBounds),
	}
	d.workers.Set(int64(cfg.Workers))
	d.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go d.worker()
	}
	return d
}

// SubmitError is a whole-request rejection, mapped to one HTTP status.
type SubmitError struct {
	Status int // HTTP status code
	Code   string
	Msg    string
}

func (e *SubmitError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

func submitErr(status int, code, format string, args ...any) *SubmitError {
	return &SubmitError{Status: status, Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Submit validates and runs every job of req, in request order, and
// blocks until all complete or ctx is done. Cache hits return without
// queueing. The whole batch is admitted atomically: if the queue cannot
// hold every miss, nothing is enqueued and the request is rejected with
// queue_full — partial admission would make 429 retries recompute the
// admitted half.
func (d *Daemon) Submit(ctx context.Context, req *Request) (*Response, *SubmitError) {
	sub := d.reg.StartSpan("svc/submit")
	defer sub.End()
	if err := req.Validate(); err != nil {
		return nil, submitErr(http.StatusBadRequest, ErrBadRequest, "%v", err)
	}

	// Decode every net up front: a malformed net is the client's fault
	// and must be a structured 400, not a queued failure.
	results := make([]Result, len(req.Jobs))
	var pending []*task
	decSpan := d.reg.StartSpan("svc/submit/decode")
	for i := range req.Jobs {
		j := &req.Jobs[i]
		netKey, err := netio.ContentHash(j.Net)
		if err != nil {
			decSpan.End()
			return nil, submitErr(http.StatusBadRequest, ErrBadRequest, "job %s: %v", j.label(i), err)
		}
		tr, tech, err := netio.Decode(j.Net)
		if err != nil {
			decSpan.End()
			return nil, submitErr(http.StatusBadRequest, ErrBadRequest, "job %s: %v", j.label(i), err)
		}
		if len(tr.Sources()) == 0 || len(tr.Sinks()) == 0 {
			decSpan.End()
			return nil, submitErr(http.StatusBadRequest, ErrBadRequest,
				"job %s: net needs at least one source and one sink", j.label(i))
		}
		key := j.cacheKey(netKey)
		d.submitted.Inc()
		if res, ok := d.cache.Get(key); ok {
			res.ID = j.label(i)
			res.Cached = true
			results[i] = res
			d.completed.Inc()
			continue
		}
		t := &task{job: j, idx: i, label: j.label(i), netKey: netKey, key: key, tr: tr, tech: tech, done: make(chan struct{})}
		t.ctx, t.cancel = d.jobContext(ctx)
		pending = append(pending, t)
		results[i] = Result{} // filled after completion
	}
	decSpan.End()

	if err := d.enqueue(pending); err != nil {
		for _, t := range pending {
			t.cancel()
		}
		return nil, err
	}
	for _, t := range pending {
		select {
		case <-t.done:
		case <-ctx.Done():
			// Client gone: cancel what has not finished and bail. The
			// workers observe the cancellation and fail the tasks fast.
			for _, u := range pending {
				u.cancel()
			}
			return nil, submitErr(http.StatusServiceUnavailable, ErrShuttingDown, "request context done: %v", ctx.Err())
		}
	}
	// Place the computed results into request order.
	for _, t := range pending {
		results[t.idx] = t.res
	}
	return &Response{Version: SchemaVersion, Results: results}, nil
}

// jobContext derives the per-job context: the request context bounded
// by the per-job deadline.
func (d *Daemon) jobContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if d.cfg.JobTimeout > 0 {
		return context.WithTimeout(ctx, d.cfg.JobTimeout)
	}
	return context.WithCancel(ctx)
}

// enqueue admits all tasks atomically or none.
func (d *Daemon) enqueue(ts []*task) *SubmitError {
	if len(ts) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return submitErr(http.StatusServiceUnavailable, ErrShuttingDown, "daemon is draining")
	}
	if len(ts) > d.free {
		d.rejected.Add(int64(len(ts)))
		return submitErr(http.StatusTooManyRequests, ErrQueueFull,
			"queue full: %d jobs submitted, %d slots free (depth %d); retry later",
			len(ts), d.free, d.cfg.QueueDepth)
	}
	d.free -= len(ts)
	d.queueDepth.Set(int64(d.cfg.QueueDepth - d.free))
	now := time.Now()
	for _, t := range ts {
		t.enqueued = now
		d.jobs <- t // cannot block: a slot is reserved for every send
	}
	return nil
}

// release frees queue slots as workers dequeue.
func (d *Daemon) release(n int) {
	d.mu.Lock()
	d.free += n
	d.queueDepth.Set(int64(d.cfg.QueueDepth - d.free))
	d.mu.Unlock()
}

func (d *Daemon) worker() {
	defer d.wg.Done()
	for t := range d.jobs {
		d.release(1)
		d.queueWait.Observe(float64(time.Since(t.enqueued)) / float64(time.Millisecond))
		d.runTask(t)
	}
}

// runTask executes one task with panic isolation and the per-job
// deadline. The job body runs on its own goroutine so a deadline can
// preempt the wait (the computation itself is not interruptible — it
// finishes in the background and is discarded).
func (d *Daemon) runTask(t *task) {
	defer close(t.done)
	defer t.cancel()
	span := d.reg.StartSpan("svc/job")
	start := time.Now()

	if err := t.ctx.Err(); err != nil {
		t.res = d.failResult(t, ErrDeadlineExceeded, fmt.Sprintf("expired before start: %v", err))
		d.deadlines.Inc()
	} else {
		resCh := make(chan Result, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					d.panics.Inc()
					d.log.Error("job panic recovered", "job", t.label, "panic", fmt.Sprint(p))
					resCh <- d.failResult(t, ErrInternal, fmt.Sprintf("panic: %v", p))
				}
			}()
			resCh <- d.exec(t)
		}()
		select {
		case r := <-resCh:
			t.res = r
		case <-t.ctx.Done():
			d.deadlines.Inc()
			t.res = d.failResult(t, ErrDeadlineExceeded, fmt.Sprintf("job exceeded deadline: %v", t.ctx.Err()))
		}
	}

	span.End()
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	d.jobDur.Observe(ms)
	if t.res.Status == StatusOK {
		d.completed.Inc()
		// Cache the result without per-request decoration.
		stored := t.res
		stored.ID = ""
		stored.Cached = false
		d.cache.Put(t.key, stored)
	} else {
		d.failed.Inc()
	}
	d.log.Info("job done", "job", t.label, "status", t.res.Status, "code", t.res.Code,
		"mode", t.job.Mode, "net_key", t.netKey, "ms", ms)
}

func (d *Daemon) failResult(t *task, code, msg string) Result {
	return Result{ID: t.label, Status: StatusError, Code: code, Error: msg, NetKey: t.netKey}
}

// exec computes the job's result. It runs on a per-job goroutine under
// runTask's panic guard.
func (d *Daemon) exec(t *task) Result {
	if d.execHook != nil {
		return d.execHook(t.ctx, t)
	}
	j := t.job
	res := Result{ID: t.label, Status: StatusOK, NetKey: t.netKey}
	rt := t.tr.RootAt(t.tr.Terminals()[0])

	if j.Mode == "ard" || j.Mode == "both" {
		span := d.reg.StartSpan("svc/job/ard")
		net := rctree.NewNet(rt, t.tech, rctree.Assignment{})
		r := ard.Compute(net, ard.Options{IncludeSelf: j.Options.IncludeSelf})
		span.End()
		res.ARD = &ARDResult{ARD: r.ARD, CritSrc: termName(t.tr, r.CritSrc), CritSink: termName(t.tr, r.CritSink)}
	}

	if j.Mode == "msri" || j.Mode == "both" {
		// Each job builds its own Options value; only the Recorder is
		// shared across workers, and the Registry is safe for concurrent
		// use (see TestOptionsCopiesAreGoroutineSafe).
		opt := core.Options{
			IncludeSelf: j.Options.IncludeSelf,
			Parallel:    j.Options.Parallel,
			WireWidths:  append([]float64(nil), j.Options.WireWidths...),
			Obs:         recorder(d.reg),
		}
		switch j.optimize() {
		case "repeaters":
			opt.Repeaters = true
		case "sizing":
			opt.SizeDrivers = true
		case "both":
			opt.Repeaters = true
			opt.SizeDrivers = true
		}
		if j.pruner() == "naive" {
			opt.Pruner = core.PruneNaive
		}
		span := d.reg.StartSpan("svc/job/optimize")
		out, err := core.Optimize(rt, t.tech, opt)
		span.End()
		if err != nil {
			return d.failResult(t, ErrBadRequest, fmt.Sprintf("optimize: %v", err))
		}
		chosen := out.Suite.MinARD()
		if j.Options.Spec > 0 {
			sol, ok := out.Suite.MinCost(j.Options.Spec)
			if !ok {
				return d.failResult(t, ErrSpecUnmet, fmt.Sprintf(
					"no solution meets ARD ≤ %g ns (best achievable %.6f)",
					j.Options.Spec, out.Suite.MinARD().ARD))
			}
			chosen = sol
		}
		encSpan := d.reg.StartSpan("svc/job/encode")
		opt2 := &OptResult{
			Chosen: suitePoint(chosen),
			Assign: netio.EncodeAssignment(chosen.Cost, chosen.ARD, chosen.Assignment()),
			Stats:  out.Stats,
		}
		for _, s := range out.Suite {
			opt2.Suite = append(opt2.Suite, suitePoint(s))
		}
		encSpan.End()
		res.Opt = opt2
	}
	return res
}

func suitePoint(s core.RootSolution) SuitePoint {
	return SuitePoint{Cost: s.Cost, ARD: s.ARD, Repeaters: s.Repeaters()}
}

func termName(tr *topo.Tree, id int) string {
	if id < 0 {
		return ""
	}
	return tr.Node(id).Term.Name
}

// recorder converts a possibly-nil *Registry into a Recorder without
// the typed-nil interface trap.
func recorder(reg *obs.Registry) obs.Recorder {
	if reg == nil {
		return nil
	}
	return reg
}

// Close stops admission and drains: queued and in-flight jobs complete
// (submitters are unblocked), workers exit, and Close returns when the
// pool is idle or ctx expires.
func (d *Daemon) Close(ctx context.Context) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.jobs)
	d.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}
