package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/cluster"
	"msrnet/internal/core"
	"msrnet/internal/faultinject"
	"msrnet/internal/jobstore"
	"msrnet/internal/netio"
	"msrnet/internal/obs"
	"msrnet/internal/obs/recorder"
	"msrnet/internal/obs/reqctx"
	"msrnet/internal/obs/spans"
	"msrnet/internal/obs/trace"
	"msrnet/internal/rctree"
	"msrnet/internal/solveprof"
	"msrnet/internal/topo"
	"msrnet/internal/validate"
)

// Config tunes the daemon.
type Config struct {
	// Workers is the worker-pool size; defaults to GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// submissions beyond it are rejected with queue_full (HTTP 429).
	// Defaults to 4×Workers.
	QueueDepth int
	// JobTimeout is the per-job deadline; a job that exceeds it returns
	// deadline_exceeded. Zero means no per-job deadline.
	JobTimeout time.Duration
	// CacheSize is the LRU result-cache capacity in entries; ≤ 0
	// disables caching. Defaults are applied by msrnetd, not here.
	CacheSize int
	// DegradeHeadroom is the slice of the job deadline reserved for the
	// coarse fallback: an optimization that has not finished exactly by
	// deadline−headroom is retried with ε-relaxed pruning, and a job
	// arriving at a worker with less than headroom remaining skips the
	// exact attempt entirely. Zero defaults to JobTimeout/4; negative
	// disables degradation (jobs either finish exactly or fail with
	// deadline_exceeded). Meaningless without a JobTimeout.
	DegradeHeadroom time.Duration
	// CoarseEps is the dominance relaxation of degraded runs (see
	// core.Options.CoarseEps). Zero defaults to 0.02 ns.
	CoarseEps float64
	// ShedMargin, when positive, sheds jobs at dequeue whose remaining
	// deadline is below the margin: they fail fast with shed_load
	// (retryable) instead of burning a worker on a doomed attempt.
	ShedMargin time.Duration
	// Faults, when non-nil, injects test faults at the daemon's named
	// injection points (svc/decode, svc/queue, svc/worker,
	// svc/cache/get, svc/cache/put). Nil in production.
	Faults *faultinject.Injector
	// Reg receives the daemon's metrics and per-job phase spans; may be
	// nil.
	Reg *obs.Registry
	// Logger receives job-level logs; slog.Default when nil. Wrap the
	// handler with reqctx.Handler so every line carries the request's
	// trace_id/job_id automatically.
	Logger *slog.Logger
	// Tracer, when non-nil, receives the per-job DP timeline: every
	// core/ard trace event of every job, tagged with the job's trace_id
	// and job id so one shared ring stays separable per job in a
	// Perfetto view. Served at GET /debug/trace.
	Tracer *trace.Tracer
	// ExplainRing bounds the finished msrnet-explain/v1 reports kept for
	// GET /debug/jobs; defaults to 256.
	ExplainRing int
	// SLOWindow/SLOInterval shape the sliding-window latency quantiles
	// (svc/latency/{queue,solve,e2e}/<outcome>); they default to
	// obs.DefaultWindow / obs.DefaultInterval.
	SLOWindow   time.Duration
	SLOInterval time.Duration
	// Recorder, when non-nil, is the always-on flight recorder: the
	// daemon feeds it the live jobs view, fires an automatic postmortem
	// on recovered worker panics, and serves it at POST /debug/dump and
	// GET /debug/recorder. The caller owns Start/Stop.
	Recorder *recorder.FlightRecorder
	// Cluster, when non-nil, joins the daemon to a msrnetd fleet
	// (DESIGN.md §13): the LRU becomes this daemon's shard of the
	// cluster cache, saturated batches forward to the least-loaded
	// peer, and /cluster/* is mounted on the HTTP surface. The daemon
	// installs itself as the node's Local handler; the caller owns
	// Start/Stop of the gossip loop.
	Cluster *cluster.Node
	// ForwardHops caps work-stealing forward chains (default 2). A
	// batch arriving with this many hops is rejected, not re-forwarded,
	// so a fleet-wide saturation degrades to 429 instead of orbiting.
	ForwardHops int
	// Tenants, when non-empty, turns on multi-tenant admission: every
	// submission must carry a configured API key (X-Msrnet-Api-Key),
	// per-tenant quotas bound admission, and worker dispatch is
	// weighted fair-share across tenants (DESIGN.md §14). Empty keeps
	// the open single-tenant behavior.
	Tenants []TenantConfig
	// Store, when non-nil, is the write-ahead job log: accepted jobs,
	// results and delivery acks are appended durably, and the daemon
	// replays un-acked entries on startup via Recover. Nil disables
	// durability (jobs live only in memory, as before).
	Store *jobstore.Store
	// Spans, when non-nil, is the per-process distributed-tracing index
	// (DESIGN.md §15): the job lifecycle records explicit spans into it
	// — submit, decode, admission, queue wait, solve with its DP phases,
	// cache hops, forwards, WAL appends — keyed by the request's trace
	// ID, and GET /debug/spans/{traceID} serves them to the fleet
	// collector. Nil disables span recording (every hook is inert).
	Spans *spans.Index
}

// DefaultCoarseEps is the dominance relaxation degraded runs use when
// Config.CoarseEps is zero.
const DefaultCoarseEps = 0.02

// LatencyBounds are the millisecond bucket bounds of the svc/queue_wait_ms
// and svc/job_ms histograms.
var LatencyBounds = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Daemon owns the job queue, worker pool and result cache. Create with
// New, submit with Submit (or through Handler's HTTP surface), and
// Close to drain.
type Daemon struct {
	cfg   Config
	reg   *obs.Registry
	log   *slog.Logger
	cache *resultCache
	table *jobTable
	rec   *recoveredTable

	wg sync.WaitGroup

	mu     sync.Mutex
	free   int // remaining queue slots
	closed bool

	// Stride-scheduler state (guarded by mu): per-tenant FIFO queues
	// hang off tenants; queued counts tasks across all of them, qcond
	// wakes workers, and globalPass is the scheduler's virtual time —
	// the pass of the last dispatched tenant, where idle tenants
	// re-enter.
	tenants      map[string]*tenantState
	byKey        map[string]*tenantState
	authRequired bool
	queued       int
	globalPass   float64
	qcond        *sync.Cond

	// seq numbers executed jobs; draining flips at StartDrain, before
	// the queue channel closes, so /readyz fails while in-flight work
	// still finishes.
	seq      atomic.Int64
	draining atomic.Bool

	submitted, completed, failed *obs.Counter
	rejected, deadlines, panics  *obs.Counter
	degraded, shed, forwarded    *obs.Counter
	queueDepth, workers          *obs.Gauge
	drainGauge                   *obs.Gauge
	queueWait, jobDur            *obs.Histogram

	// lat holds one sliding-window latency triple per outcome class;
	// built once at New so the job path never allocates a window.
	lat map[string]latWindows

	// execHook replaces exec in tests that need a slow or exploding
	// job body without building an adversarial net.
	execHook func(ctx context.Context, t *task) Result
}

// latWindows is the per-outcome-class SLO triple: queue wait, solve
// time and end-to-end latency, each a sliding-window quantile estimator.
type latWindows struct {
	queue, solve, e2e *obs.WindowHist
}

// task is one unit of queued work: a validated, decoded job plus its
// completion signal.
type task struct {
	job    *Job
	idx    int
	label  string
	netKey string
	key    string
	tr     *topo.Tree
	tech   buslib.Tech

	// Request-scoped identity: the client's trace id (from the request
	// context) and the daemon-assigned job id ("j<seq>").
	traceID string
	jid     string
	// Tenancy and durability: the owning tenant, whether the task holds
	// reserved queue slots (WAL-recovered tasks do not), and the job's
	// durable WAL identity ("" when the daemon runs without a store).
	tn       *tenantState
	slotted  bool
	walUID   string
	replayed bool
	seq      int64
	explain  *Explain
	want     bool // request asked for the explain on the result
	profile  bool // request asked for the lifecycle profile (implies want)
	prof     *solveprof.Profile

	ctx    context.Context
	cancel context.CancelFunc
	// Tracing state: the queue-wait span (started at dispatch, ended at
	// dequeue), the solve span's context (DP phase spans in exec parent
	// under it), and — for WAL-replayed tasks — the replay root span
	// ended when the recovered result lands.
	qspan    *spans.Span
	sctx     context.Context
	rspan    *spans.Span
	enqueued time.Time
	waitMs   float64 // queue wait, stamped at dequeue
	solveMs  float64 // wall-clock of the solve attempt(s)

	res  Result
	done chan struct{}
}

// New builds the daemon and starts its workers.
func New(cfg Config) *Daemon {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	reg := cfg.Reg
	d := &Daemon{
		cfg:        cfg,
		reg:        reg,
		log:        cfg.Logger,
		cache:      newResultCache(cfg.CacheSize, reg),
		table:      newJobTable(cfg.ExplainRing),
		rec:        newRecoveredTable(),
		free:       cfg.QueueDepth,
		submitted:  reg.Counter("svc/jobs_submitted"),
		completed:  reg.Counter("svc/jobs_completed"),
		failed:     reg.Counter("svc/jobs_failed"),
		rejected:   reg.Counter("svc/jobs_rejected"),
		deadlines:  reg.Counter("svc/jobs_deadline_exceeded"),
		panics:     reg.Counter("svc/panics_recovered"),
		degraded:   reg.Counter("svc/jobs_degraded"),
		shed:       reg.Counter("svc/jobs_shed"),
		forwarded:  reg.Counter("svc/jobs_forwarded"),
		queueDepth: reg.Gauge("svc/queue_depth"),
		workers:    reg.Gauge("svc/workers"),
		drainGauge: reg.Gauge("svc/draining"),
		queueWait:  reg.Histogram("svc/queue_wait_ms", LatencyBounds),
		jobDur:     reg.Histogram("svc/job_ms", LatencyBounds),
	}
	d.qcond = sync.NewCond(&d.mu)
	win, iv := d.sloWindows()
	d.initTenants(cfg.Tenants, win, iv)
	d.lat = make(map[string]latWindows, len(outcomeClasses))
	for _, class := range outcomeClasses {
		d.lat[class] = latWindows{
			queue: reg.Window("svc/latency/queue/"+class, win, iv),
			solve: reg.Window("svc/latency/solve/"+class, win, iv),
			e2e:   reg.Window("svc/latency/e2e/"+class, win, iv),
		}
	}
	// Postmortem bundles carry the live jobs view so an incident report
	// can say what was in flight when the daemon died.
	cfg.Recorder.SetJobs(func() any {
		active, recent := d.table.List()
		return jobListBody{Schema: ExplainSchema, Active: active, Recent: recent}
	})
	// Postmortem bundles carry the tenancy view (quota fill, stride
	// state, per-tenant counters) so an incident report can say who was
	// being throttled or starved when the daemon died.
	cfg.Recorder.SetTenants(d.TenantsState)
	if cfg.Cluster != nil {
		// Inbound cluster traffic (shard-cache gets/puts, forwarded
		// batches, health probes for gossip) dispatches to this daemon.
		cfg.Cluster.SetLocal(clusterLocal{d: d})
		// Postmortem bundles carry the peer view, so an incident report
		// can say what the fleet looked like when the daemon died.
		cfg.Recorder.SetCluster(func() any { return cfg.Cluster.State() })
	}
	d.workers.Set(int64(cfg.Workers))
	d.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go d.worker()
	}
	return d
}

// SubmitError is a whole-request rejection, mapped to one HTTP status.
type SubmitError struct {
	Status int // HTTP status code
	Code   string
	Msg    string
	// Cause is the msrnet-error/v1 taxonomy code when the rejection
	// traces to net/technology validation; empty otherwise.
	Cause string
	// RetryAfter, when positive, is the caller-specific backoff hint
	// surfaced as the Retry-After header — per-tenant quota rejections
	// compute it from the tenant's own rate deficit instead of the
	// global "1".
	RetryAfter time.Duration
}

func (e *SubmitError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

func submitErr(status int, code, format string, args ...any) *SubmitError {
	return &SubmitError{Status: status, Code: code, Msg: fmt.Sprintf(format, args...)}
}

// decodeErr builds the 400 for a net that failed validation, carrying
// the taxonomy code of err as the machine-readable cause.
func decodeErr(label string, err error) *SubmitError {
	se := submitErr(http.StatusBadRequest, ErrBadRequest, "job %s: %v", label, err)
	se.Cause = validate.CodeOf(err)
	return se
}

// Submit validates and runs every job of req, in request order, and
// blocks until all complete or ctx is done. Cache hits return without
// queueing. The whole batch is admitted atomically: if the queue cannot
// hold every miss, nothing is enqueued and the request is rejected with
// queue_full — partial admission would make 429 retries recompute the
// admitted half.
func (d *Daemon) Submit(ctx context.Context, req *Request) (*Response, *SubmitError) {
	submitStart := time.Now()
	sub := d.reg.StartSpan("svc/submit")
	defer sub.End()
	// Root span of this process's share of the trace. A forwarded batch
	// carries the sender's hop span reference, so this root links under
	// it and the stitched trace shows both sides of the hop.
	fmeta := forwardMetaFrom(ctx)
	if fmeta.ParentSpan != "" {
		ctx = spans.WithRemoteParent(ctx, fmeta.ParentSpan)
	}
	ctx, root := d.cfg.Spans.Start(ctx, "submit")
	defer root.End()
	// Authenticate before any decode work: an unknown key must cost the
	// daemon nothing, and every downstream artifact (explain, WAL,
	// metrics) carries the tenant.
	tn, serr := d.tenantFor(ctx)
	if serr != nil {
		return nil, serr
	}
	if err := req.Validate(); err != nil {
		return nil, submitErr(http.StatusBadRequest, ErrBadRequest, "%v", err)
	}

	// Decode every net up front: a malformed net is the client's fault
	// and must be a structured 400, not a queued failure.
	traceID := reqctx.TraceID(ctx)
	results := make([]Result, len(req.Jobs))
	var pending []*task
	decSpan := d.reg.StartSpan("svc/submit/decode")
	_, dec := d.cfg.Spans.Start(ctx, "decode")
	defer dec.End()
	for i := range req.Jobs {
		j := &req.Jobs[i]
		if err := d.cfg.Faults.Fire(ctx, "svc/decode"); err != nil {
			decSpan.End()
			return nil, submitErr(http.StatusServiceUnavailable, ErrInternal, "decode: %v", err)
		}
		netKey, err := netio.ContentHash(j.Net)
		if err != nil {
			decSpan.End()
			return nil, decodeErr(j.label(i), err)
		}
		tr, tech, err := netio.Decode(j.Net)
		if err != nil {
			decSpan.End()
			return nil, decodeErr(j.label(i), err)
		}
		if len(tr.Sources()) == 0 || len(tr.Sinks()) == 0 {
			decSpan.End()
			return nil, submitErr(http.StatusBadRequest, ErrBadRequest,
				"job %s: net needs at least one source and one sink", j.label(i))
		}
		key := j.cacheKey(netKey)
		d.submitted.Inc()
		tn.submitted.Inc()
		seq := d.seq.Add(1)
		jid := fmt.Sprintf("j%d", seq)
		// A profiled request bypasses the cache (not even a lookup, so
		// hit/miss counters and LRU order stay honest): the lifecycle
		// profile exists only on a fresh solve, and serving a cached
		// result would silently return a report without one.
		res, hit := d.lookupUnlessProfiled(ctx, key, req.Profile)
		var shardOwner cluster.ID
		if !hit && !req.Profile {
			// Local miss: ask the net's home peer for its shard (single
			// hop; errors and down owners degrade to a miss).
			res, shardOwner, hit = d.shardLookup(ctx, netKey, key)
		}
		if hit {
			res.ID = j.label(i)
			res.Cached = true
			e := d.newExplain(jid, seq, j, i, traceID, netKey)
			e.Tenant = tn.cfg.Name
			e.State = JobDone
			e.Outcome = OutcomeOK
			e.Cached = true
			d.stampCluster(e, fmeta)
			if shardOwner != "" {
				e.ServedBy = string(shardOwner)
			}
			d.table.record(e)
			if req.Explain {
				res.Explain = e
			}
			results[i] = res
			d.completed.Inc()
			continue
		}
		t := &task{job: j, idx: i, label: j.label(i), netKey: netKey, key: key, tr: tr, tech: tech,
			traceID: traceID, jid: jid, seq: seq, want: req.Explain || req.Profile,
			profile: req.Profile, tn: tn, slotted: true, done: make(chan struct{})}
		t.explain = d.newExplain(jid, seq, j, i, traceID, netKey)
		t.explain.Tenant = tn.cfg.Name
		d.stampCluster(t.explain, fmeta)
		t.ctx, t.cancel = d.jobContext(reqctx.WithJobID(ctx, jid))
		pending = append(pending, t)
		results[i] = Result{} // filled after completion
	}
	decSpan.End()
	dec.End()

	// Register the batch for introspection (GET /debug/jobs) before the
	// queue can hand it to a worker. A rejected batch (queue full,
	// draining) still retires into the done-ring as outcome=rejected:
	// a daemon shedding admission under saturation must show those jobs
	// in /debug/jobs and in postmortem bundles, not silently drop them.
	for _, t := range pending {
		d.table.start(t.explain)
	}
	actx, admit := d.cfg.Spans.Start(ctx, "admit")
	err := d.reserve(tn, len(pending))
	if err == nil {
		// Durability barrier: the accepted records must be on disk
		// before any worker can produce a result for them. One Append is
		// one group commit for the whole batch.
		if werr := d.walAccept(actx, pending); werr != nil {
			d.unreserve(tn, len(pending))
			err = submitErr(http.StatusServiceUnavailable, ErrInternal, "job store: %v", werr)
		}
	}
	admit.End()
	if err != nil {
		// A saturated or draining queue is a work-stealing trigger: hand
		// the batch to the least-loaded ready peer before rejecting. A
		// tenant that exceeded its own quota gets its per-tenant 429 —
		// stealing would let it launder the quota through peers.
		if resp, ok := d.tryForward(ctx, req, pending, results, err); ok {
			return resp, nil
		}
		// Only a batch actually bounced back to the client counts as
		// rejected — a stolen batch above is delivered work, not loss.
		if err.Code == ErrQueueFull || err.Code == ErrQuotaExceeded {
			d.rejected.Add(int64(len(pending)))
			tn.rejected.Add(int64(len(pending)))
		}
		ms := float64(time.Since(submitStart)) / float64(time.Millisecond)
		for _, t := range pending {
			t.cancel()
			e := t.explain
			d.table.detach(e.JobID)
			e.State = JobDone
			e.Outcome = OutcomeRejected
			e.Code = err.Code
			e.TotalMs = ms
			d.table.record(e)
			if lw, ok := d.lat[OutcomeRejected]; ok {
				lw.queue.Observe(0)
				lw.solve.Observe(0)
				lw.e2e.ObserveEx(ms, e.TraceID)
			}
		}
		return nil, err
	}
	d.dispatch(pending)
	for _, t := range pending {
		select {
		case <-t.done:
		case <-ctx.Done():
			// Client gone: cancel what has not finished and bail. The
			// workers observe the cancellation and fail the tasks fast.
			for _, u := range pending {
				u.cancel()
			}
			return nil, submitErr(http.StatusServiceUnavailable, ErrShuttingDown, "request context done: %v", ctx.Err())
		}
	}
	// Place the computed results into request order.
	for _, t := range pending {
		results[t.idx] = t.res
	}
	// The batch is about to reach the client: acknowledge every durable
	// job so compaction can drop it. A crash before this append replays
	// the stored results instead of losing them.
	d.walAck(ctx, pending)
	return &Response{Version: SchemaVersion, Results: results}, nil
}

// newExplain seeds the per-job report with its identity; timing and
// solve shape are filled at completion.
func (d *Daemon) newExplain(jid string, seq int64, j *Job, i int, traceID, netKey string) *Explain {
	return &Explain{
		Schema:  ExplainSchema,
		JobID:   jid,
		Seq:     seq,
		Label:   j.label(i),
		TraceID: traceID,
		NetKey:  netKey,
		Mode:    j.Mode,
		State:   JobQueued,
	}
}

// jobContext derives the per-job context: the request context bounded
// by the per-job deadline.
func (d *Daemon) jobContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if d.cfg.JobTimeout > 0 {
		return context.WithTimeout(ctx, d.cfg.JobTimeout)
	}
	return context.WithCancel(ctx)
}

// cacheGet looks up key under the svc/cache/get injection point: an
// injected fault degrades to a miss (the job recomputes) rather than
// failing the request.
// lookupUnlessProfiled consults the result cache, except for profiled
// requests, which always recompute.
func (d *Daemon) lookupUnlessProfiled(ctx context.Context, key string, profiled bool) (Result, bool) {
	if profiled {
		return Result{}, false
	}
	return d.cacheGet(ctx, key)
}

func (d *Daemon) cacheGet(ctx context.Context, key string) (Result, bool) {
	_, sp := d.cfg.Spans.Start(ctx, "cache/get")
	defer sp.End()
	if err := d.cfg.Faults.Fire(ctx, "svc/cache/get"); err != nil {
		d.log.Warn("cache get fault", "err", err)
		return Result{}, false
	}
	res, hit := d.cache.Get(key)
	sp.Set("hit", fmt.Sprint(hit))
	return res, hit
}

func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		t := d.next()
		if t == nil {
			return
		}
		t.waitMs = float64(time.Since(t.enqueued)) / float64(time.Millisecond)
		d.queueWait.Observe(t.waitMs)
		d.runTask(t)
	}
}

// runTask executes one task with panic isolation and the per-job
// deadline. The job body runs on its own goroutine so a deadline can
// preempt the wait (the computation itself is not interruptible — it
// finishes in the background and is discarded).
func (d *Daemon) runTask(t *task) {
	defer close(t.done)
	defer t.cancel()
	d.table.setRunning(t.jid)
	t.qspan.End() // queue wait is over: a worker has the task
	span := d.reg.StartSpan("svc/job")
	start := time.Now()

	if err := t.ctx.Err(); err != nil {
		t.res = d.failResult(t, ErrDeadlineExceeded, fmt.Sprintf("expired before start: %v", err))
		d.deadlines.Inc()
	} else if d.shouldShed(t) {
		d.shed.Inc()
		t.res = d.failResult(t, ErrShedLoad, fmt.Sprintf(
			"job spent its deadline queued (%v remaining < %v margin); resubmit for a fresh budget",
			remainingBudget(t.ctx), d.cfg.ShedMargin))
	} else {
		resCh := make(chan Result, 1)
		var solveSpan *spans.Span
		t.sctx, solveSpan = d.cfg.Spans.Start(t.ctx, "solve")
		solveStart := time.Now()
		go func() {
			defer func() {
				if p := recover(); p != nil {
					d.panics.Inc()
					d.log.ErrorContext(t.ctx, "job panic recovered", "job", t.label, "panic", fmt.Sprint(p))
					// A worker panic is a postmortem trigger: the recorder
					// snapshots the last minutes of daemon state while the
					// evidence is still hot (cooldown-debounced, so a panic
					// storm writes one bundle, not hundreds).
					if dir, err := d.cfg.Recorder.TriggerAuto(recorder.ReasonPanic,
						fmt.Sprintf("job %s: %v", t.jid, p)); err != nil {
						d.log.ErrorContext(t.ctx, "postmortem capture failed", "err", err)
					} else if dir != "" {
						d.log.ErrorContext(t.ctx, "postmortem bundle written", "bundle", dir)
					}
					resCh <- d.failResult(t, ErrInternal, fmt.Sprintf("panic: %v", p))
				}
			}()
			if err := d.cfg.Faults.Fire(t.ctx, "svc/worker"); err != nil {
				resCh <- d.failResult(t, ErrInternal, fmt.Sprintf("worker: %v", err))
				return
			}
			resCh <- d.exec(t)
		}()
		select {
		case r := <-resCh:
			t.res = r
		case <-t.ctx.Done():
			d.deadlines.Inc()
			t.res = d.failResult(t, ErrDeadlineExceeded, fmt.Sprintf("job exceeded deadline: %v", t.ctx.Err()))
		}
		t.solveMs = float64(time.Since(solveStart)) / float64(time.Millisecond)
		solveSpan.End()
	}

	span.End()
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	d.jobDur.Observe(ms)
	// Persist the outcome before anything can deliver it: a crash after
	// this append replays the stored bytes instead of re-solving.
	d.walResult(t)
	if t.res.Status == StatusOK {
		d.completed.Inc()
		if t.res.Degraded {
			// A degraded result is only the best answer under THIS job's
			// deadline pressure; caching it would pin the coarse answer
			// for future unpressed submissions of the same net.
			d.degraded.Inc()
		} else if d.cfg.Faults.Fire(t.ctx, "svc/cache/put") == nil {
			// Cache the result without per-request decoration. An injected
			// put fault drops the insert — the cache is an optimization,
			// never a correctness dependency.
			stored := t.res
			stored.ID = ""
			stored.Cached = false
			stored.Explain = nil
			d.cache.Put(t.key, stored)
			// Replicate to the net's home peer so any fleet member's next
			// submission of this net hits in one hop. The local copy above
			// is the fallback when the owner is down.
			d.shardStore(t.ctx, t.netKey, t.key, stored)
		}
	} else {
		d.failed.Inc()
	}
	d.finishJob(t)
	d.log.InfoContext(t.ctx, "job done", "job", t.label, "status", t.res.Status, "code", t.res.Code,
		"mode", t.job.Mode, "net_key", t.netKey, "ms", ms, "degraded", t.res.Degraded,
		"outcome", t.explain.Outcome, "queue_wait_ms", t.waitMs, "solve_ms", t.solveMs)
}

// finishJob completes the explain report, retires it to the finished
// ring, observes the per-outcome SLO latency windows and — when the
// request asked — attaches the report to the result. The report is
// detached from the live table BEFORE its completion fields are
// written: a concurrent List/Get (debug handlers, the flight
// recorder's jobs capture) must never observe a half-finished report.
func (d *Daemon) finishJob(t *task) {
	e := t.explain
	d.table.detach(e.JobID)
	e.State = JobDone
	e.Outcome = outcomeOf(t.res)
	e.Code = t.res.Code
	e.QueueWaitMs = t.waitMs
	e.SolveMs = t.solveMs
	e.TotalMs = float64(time.Since(t.enqueued)) / float64(time.Millisecond)
	if t.res.Opt != nil {
		e.Solve = solveExplain(t.res.Opt.Stats)
		e.Profile = t.prof
		if t.res.Degraded {
			e.Degradation = &DegradeExplain{
				Reason:     t.res.DegradedReason,
				CoarseEps:  t.res.Opt.CoarseEps,
				ErrorBound: t.res.Opt.CoarseEps * float64(t.res.Opt.Stats.PruneCalls),
			}
		}
	}
	e.Spans = d.cfg.Spans.Summarize(e.TraceID)
	d.table.record(e)
	if t.want {
		t.res.Explain = e
	}
	if lw, ok := d.lat[e.Outcome]; ok {
		lw.queue.ObserveEx(e.QueueWaitMs, e.TraceID)
		lw.solve.ObserveEx(e.SolveMs, e.TraceID)
		lw.e2e.ObserveEx(e.TotalMs, e.TraceID)
	}
	if t.tn != nil {
		t.tn.latE2E.Observe(e.TotalMs)
		if t.res.Status == StatusOK {
			t.tn.completed.Inc()
		}
	}
}

// shouldShed reports whether the task's remaining deadline at dequeue
// is below the shedding margin — the job spent its budget queued and
// an attempt would almost surely time out mid-flight.
func (d *Daemon) shouldShed(t *task) bool {
	if d.cfg.ShedMargin <= 0 {
		return false
	}
	rem := remainingBudget(t.ctx)
	return rem >= 0 && rem < d.cfg.ShedMargin
}

// remainingBudget returns the time left before ctx's deadline, or -1
// when it has none.
func remainingBudget(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return -1
	}
	return time.Until(dl)
}

func (d *Daemon) failResult(t *task, code, msg string) Result {
	return Result{ID: t.label, Status: StatusError, Code: code, Error: msg,
		NetKey: t.netKey, Retryable: retryableCode(code)}
}

// exec computes the job's result. It runs on a per-job goroutine under
// runTask's panic guard.
func (d *Daemon) exec(t *task) Result {
	if d.execHook != nil {
		return d.execHook(t.ctx, t)
	}
	j := t.job
	res := Result{ID: t.label, Status: StatusOK, NetKey: t.netKey}
	rt := t.tr.RootAt(t.tr.Terminals()[0])

	// Tag every trace event of this job with its request-scoped identity
	// so a shared ring tracer stays separable per job.
	var targs []trace.Arg
	if d.cfg.Tracer != nil {
		targs = []trace.Arg{trace.S("trace_id", t.traceID), trace.S("job", t.jid)}
	}

	if j.Mode == "ard" || j.Mode == "both" {
		span := d.reg.StartSpan("svc/job/ard")
		_, ps := d.cfg.Spans.Start(t.sctx, "solve/ard")
		net := rctree.NewNet(rt, t.tech, rctree.Assignment{})
		r := ard.Compute(net, ard.Options{IncludeSelf: j.Options.IncludeSelf,
			Trace: d.cfg.Tracer, TraceArgs: targs})
		ps.End()
		span.End()
		res.ARD = &ARDResult{ARD: r.ARD, CritSrc: termName(t.tr, r.CritSrc), CritSink: termName(t.tr, r.CritSink)}
	}

	if j.Mode == "msri" || j.Mode == "both" {
		// Each job builds its own Options value; only the Recorder is
		// shared across workers, and the Registry is safe for concurrent
		// use (see TestOptionsCopiesAreGoroutineSafe).
		opt := core.Options{
			IncludeSelf: j.Options.IncludeSelf,
			Parallel:    j.Options.Parallel,
			WireWidths:  append([]float64(nil), j.Options.WireWidths...),
			Obs:         asRecorder(d.reg),
			Trace:       d.cfg.Tracer,
			TraceArgs:   targs,
			Profile:     t.profile,
		}
		switch j.optimize() {
		case "repeaters":
			opt.Repeaters = true
		case "sizing":
			opt.SizeDrivers = true
		case "both":
			opt.Repeaters = true
			opt.SizeDrivers = true
		}
		if j.pruner() == "naive" {
			opt.Pruner = core.PruneNaive
		}
		span := d.reg.StartSpan("svc/job/optimize")
		_, ps := d.cfg.Spans.Start(t.sctx, "solve/optimize")
		out, deg, err := d.runOptimize(t, rt, opt)
		ps.End()
		span.End()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return d.failResult(t, ErrDeadlineExceeded, fmt.Sprintf("optimize: %v", err))
			}
			return d.failResult(t, ErrBadRequest, fmt.Sprintf("optimize: %v", err))
		}
		if t.profile {
			// Convert on the worker, off the finishJob path; finishJob
			// attaches it to the explain report. Under degradation the
			// profile describes the run that produced the answer (the
			// coarse retry), matching the stats it ships with.
			t.prof = solveprof.FromResult(out, "msrnetd", t.jid)
		}
		chosen, err := out.Suite.MinARD()
		if err != nil {
			return d.failResult(t, ErrInternal, fmt.Sprintf("optimize: %v", err))
		}
		if j.Options.Spec > 0 {
			sol, ok := out.Suite.MinCost(j.Options.Spec)
			if !ok {
				return d.failResult(t, ErrSpecUnmet, fmt.Sprintf(
					"no solution meets ARD ≤ %g ns (best achievable %.6f)",
					j.Options.Spec, chosen.ARD))
			}
			chosen = sol
		}
		encSpan := d.reg.StartSpan("svc/job/encode")
		_, es := d.cfg.Spans.Start(t.sctx, "solve/encode")
		opt2 := &OptResult{
			Chosen: suitePoint(chosen),
			Assign: netio.EncodeAssignment(chosen.Cost, chosen.ARD, chosen.Assignment()),
			Stats:  out.Stats,
		}
		for _, s := range out.Suite {
			opt2.Suite = append(opt2.Suite, suitePoint(s))
		}
		es.End()
		encSpan.End()
		if deg != nil {
			res.Degraded = true
			res.DegradedReason = deg.reason
			opt2.CoarseEps = deg.eps
		}
		res.Opt = opt2
	}
	return res
}

// degradeInfo describes the fallback a degraded optimization took.
type degradeInfo struct {
	reason string
	eps    float64
}

// runOptimize runs the DP under the degradation policy. With headroom
// h (DegradeHeadroom, defaulting to JobTimeout/4) and a job deadline D:
// a job reaching a worker with less than h remaining skips the exact
// attempt and runs coarse (ε-relaxed pruning) directly; otherwise the
// exact DP runs under a soft deadline D−h, and if it expires there
// while the job is still live, the headroom is spent on a coarse
// retry. Negative headroom or a deadline-free job disables the policy:
// one exact attempt, bounded only by the job context.
func (d *Daemon) runOptimize(t *task, rt *topo.Rooted, opt core.Options) (*core.Result, *degradeInfo, error) {
	headroom := d.cfg.DegradeHeadroom
	if headroom == 0 {
		headroom = d.cfg.JobTimeout / 4
	}
	deadline, hasDL := t.ctx.Deadline()
	if headroom <= 0 || !hasDL {
		opt.Context = t.ctx
		out, err := core.Optimize(rt, t.tech, opt)
		return out, nil, err
	}
	eps := d.cfg.CoarseEps
	if eps == 0 {
		eps = DefaultCoarseEps
	}
	coarse := func(reason string) (*core.Result, *degradeInfo, error) {
		copt := opt
		copt.Context = t.ctx
		copt.CoarseEps = eps
		out, err := core.Optimize(rt, t.tech, copt)
		if err != nil {
			return nil, nil, err
		}
		return out, &degradeInfo{reason: reason, eps: eps}, nil
	}
	if time.Until(deadline) < headroom {
		// The queue ate the budget; an exact attempt cannot fit.
		return coarse("queue_pressure")
	}
	soft, cancel := context.WithDeadline(t.ctx, deadline.Add(-headroom))
	opt.Context = soft
	out, err := core.Optimize(rt, t.tech, opt)
	cancel()
	if err == nil {
		return out, nil, nil
	}
	// The exact attempt died on the soft deadline while the job itself
	// is still live: spend the reserved headroom on a coarse retry.
	if errors.Is(err, context.DeadlineExceeded) && t.ctx.Err() == nil {
		return coarse("soft_deadline")
	}
	return nil, nil, err
}

func suitePoint(s core.RootSolution) SuitePoint {
	return SuitePoint{Cost: s.Cost, ARD: s.ARD, Repeaters: s.Repeaters()}
}

func termName(tr *topo.Tree, id int) string {
	if id < 0 {
		return ""
	}
	return tr.Node(id).Term.Name
}

// asRecorder converts a possibly-nil *Registry into a Recorder without
// the typed-nil interface trap.
func asRecorder(reg *obs.Registry) obs.Recorder {
	if reg == nil {
		return nil
	}
	return reg
}

// StartDrain begins the graceful-shutdown handshake without stopping
// anything: new submissions are rejected with shutting_down, /readyz
// flips to 503, and /healthz stays 200 — exactly the window a load
// balancer needs to move traffic before the listener goes away. Queued
// and in-flight jobs keep running. Idempotent; Close implies it.
func (d *Daemon) StartDrain() {
	if d.draining.CompareAndSwap(false, true) {
		d.drainGauge.Set(1)
		d.log.Info("drain started: admission closed, /readyz failing, in-flight jobs continue")
	}
}

// Draining reports whether StartDrain (or Close) has been called.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// Ready is the /readyz predicate: false (with a reason) while draining
// or while the queue is saturated — both states where a load balancer
// should prefer another backend even though the process is healthy.
func (d *Daemon) Ready() (bool, string) {
	if d.draining.Load() {
		return false, "draining"
	}
	d.mu.Lock()
	free := d.free
	d.mu.Unlock()
	if free == 0 {
		return false, "queue_saturated"
	}
	return true, "ok"
}

// Close stops admission and drains: queued and in-flight jobs complete
// (submitters are unblocked), workers exit, and Close returns when the
// pool is idle or ctx expires.
func (d *Daemon) Close(ctx context.Context) error {
	d.StartDrain()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.qcond.Broadcast() // workers drain the queues, then observe closed
	d.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}
