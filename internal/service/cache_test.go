package service

import (
	"fmt"
	"sync"
	"testing"

	"msrnet/internal/obs"
)

// TestCacheConcurrentConsistency hammers the result cache from many
// goroutines with a mixed hit/miss/eviction load (key space larger
// than capacity) and then checks the counters' books balance exactly:
// every Get is a hit or a miss, every insert is either still resident
// or was evicted, and the size never exceeds capacity. Run under
// -race this also proves the locking.
func TestCacheConcurrentConsistency(t *testing.T) {
	const (
		capacity   = 32
		goroutines = 8
		opsPerG    = 2000
		keySpace   = 96 // 3× capacity: constant eviction pressure
	)
	reg := obs.New()
	c := newResultCache(capacity, reg)

	var gets, puts int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			myGets, myPuts := int64(0), int64(0)
			for i := 0; i < opsPerG; i++ {
				key := fmt.Sprintf("k%d", (g*7+i*13)%keySpace)
				if i%3 == 0 {
					c.Put(key, Result{Status: StatusOK, NetKey: key})
					myPuts++
				} else {
					if res, ok := c.Get(key); ok && res.NetKey != key {
						t.Errorf("cache returned %q for key %q", res.NetKey, key)
					}
					myGets++
				}
			}
			mu.Lock()
			gets += myGets
			puts += myPuts
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	hits := reg.Counter("svc/cache_hits").Value()
	misses := reg.Counter("svc/cache_misses").Value()
	inserts := reg.Counter("svc/cache_inserts").Value()
	evictions := reg.Counter("svc/cache_evictions").Value()

	if hits+misses != gets {
		t.Errorf("hits(%d)+misses(%d) = %d, want gets = %d", hits, misses, hits+misses, gets)
	}
	if inserts > puts {
		t.Errorf("inserts(%d) > puts(%d)", inserts, puts)
	}
	if got := int64(c.Len()); inserts-evictions != got {
		t.Errorf("inserts(%d)−evictions(%d) = %d, want resident = %d", inserts, evictions, inserts-evictions, got)
	}
	if c.Len() > capacity {
		t.Errorf("len %d exceeds capacity %d", c.Len(), capacity)
	}
	if size := reg.Gauge("svc/cache_size").Value(); size > capacity {
		t.Errorf("svc/cache_size gauge %d exceeds capacity %d", size, capacity)
	}
}

// TestCacheDisabled: capacity ≤ 0 must behave as a pure miss machine
// without booking inserts.
func TestCacheDisabled(t *testing.T) {
	reg := obs.New()
	c := newResultCache(0, reg)
	c.Put("k", Result{Status: StatusOK})
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if got := reg.Counter("svc/cache_inserts").Value(); got != 0 {
		t.Fatalf("disabled cache booked %d inserts", got)
	}
	if got := reg.Counter("svc/cache_misses").Value(); got != 1 {
		t.Fatalf("disabled cache booked %d misses, want 1", got)
	}
}
