package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	"msrnet/internal/cluster"
	"msrnet/internal/obs/reqctx"
)

// This file is the daemon side of internal/cluster (DESIGN.md §13):
// the Local adapter that serves inbound cluster traffic (shard-cache
// get/put, forwarded submissions, health/load for gossip), the shard-
// cache routing on the submit path, and the work-stealing forward that
// turns local queue saturation into a hop to the least-loaded peer.

// clusterLocal adapts the daemon to cluster.Local. Cache values cross
// the wire as the JSON of the stored (stripped) Result, so a remote hit
// decodes into exactly what a local hit returns.
type clusterLocal struct {
	d *Daemon
}

func (cl clusterLocal) CacheGet(key string) ([]byte, bool) {
	res, ok := cl.d.cache.Get(key)
	if !ok {
		return nil, false
	}
	val, err := json.Marshal(res)
	if err != nil {
		cl.d.log.Warn("shard cache encode failed", "key", key, "err", err)
		return nil, false
	}
	return val, true
}

func (cl clusterLocal) CachePut(key string, val []byte) {
	var res Result
	if err := json.Unmarshal(val, &res); err != nil {
		cl.d.log.Warn("shard cache put rejected: bad value", "key", key, "err", err)
		return
	}
	// Only clean successes are cacheable — the same rule the local put
	// path applies. A peer cannot push a degraded or failed result into
	// our shard.
	if res.Status != StatusOK || res.Degraded {
		return
	}
	res.ID = ""
	res.Cached = false
	res.Explain = nil
	cl.d.cache.Put(key, res)
}

func (cl clusterLocal) Submit(ctx context.Context, body []byte, meta cluster.ForwardMeta) ([]byte, int) {
	ctx = withForwardMeta(ctx, meta)
	if meta.TraceID != "" {
		ctx = reqctx.WithTraceID(ctx, meta.TraceID)
	}
	ctx = WithAPIKey(ctx, meta.APIKey)
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return marshalErrorBody(ErrorBody{Version: SchemaVersion, Code: ErrBadRequest,
			Error: "decode forwarded request: " + err.Error()}), http.StatusBadRequest
	}
	resp, serr := cl.d.Submit(ctx, &req)
	if serr != nil {
		return marshalErrorBody(ErrorBody{Version: SchemaVersion, Code: serr.Code,
			Error: serr.Msg, Cause: serr.Cause}), serr.Status
	}
	out, err := json.Marshal(resp)
	if err != nil {
		return marshalErrorBody(ErrorBody{Version: SchemaVersion, Code: ErrInternal,
			Error: "encode forwarded response: " + err.Error()}), http.StatusInternalServerError
	}
	return out, http.StatusOK
}

func (cl clusterLocal) Status() (bool, int64) {
	ready, _ := cl.d.Ready()
	cl.d.mu.Lock()
	load := int64(cl.d.cfg.QueueDepth - cl.d.free)
	cl.d.mu.Unlock()
	return ready, load
}

func marshalErrorBody(body ErrorBody) []byte {
	b, err := json.Marshal(body)
	if err != nil {
		return []byte(`{"version":"` + SchemaVersion + `","code":"` + ErrInternal + `","error":"encode error body"}`)
	}
	return b
}

// forwardKey carries a forwarded submission's provenance on the request
// context: the HTTP layer parses it off the X-Msrnet-Forward-* headers,
// the in-memory transport attaches it directly.
type forwardKey struct{}

func withForwardMeta(ctx context.Context, meta cluster.ForwardMeta) context.Context {
	return context.WithValue(ctx, forwardKey{}, meta)
}

func forwardMetaFrom(ctx context.Context) cluster.ForwardMeta {
	meta, _ := ctx.Value(forwardKey{}).(cluster.ForwardMeta)
	return meta
}

// stampCluster marks a report with its fleet provenance: which member
// is answering, and which member handed the batch over when the
// submission arrived by work-stealing.
func (d *Daemon) stampCluster(e *Explain, meta cluster.ForwardMeta) {
	if n := d.cfg.Cluster; n != nil {
		e.ServedBy = string(n.Self().ID)
	}
	if meta.From != "" {
		e.ForwardedFrom = string(meta.From)
	}
}

// defaultForwardHops caps work-stealing chains when Config.ForwardHops
// is zero: one steal plus one re-steal, then the fleet answers 429.
const defaultForwardHops = 2

func (d *Daemon) forwardHops() int {
	if d.cfg.ForwardHops > 0 {
		return d.cfg.ForwardHops
	}
	return defaultForwardHops
}

// shardLookup consults the cluster shard cache after a local miss: the
// key's home peer (by the net's content hash) answers a single-hop get.
// ok is false when the daemon is clusterless, the home peer is this
// daemon (then the local miss was authoritative), or the hop missed or
// failed — errors degrade to a miss and the job solves locally.
func (d *Daemon) shardLookup(ctx context.Context, netKey, key string) (Result, cluster.ID, bool) {
	n := d.cfg.Cluster
	if n == nil {
		return Result{}, "", false
	}
	owner, ok := n.Owner(netKey)
	if !ok || n.IsSelf(owner.ID) {
		return Result{}, "", false
	}
	_, sp := d.cfg.Spans.Start(ctx, "cache/remote_get")
	sp.SetPeer(string(owner.ID))
	val, ok := n.CacheGet(ctx, owner, key)
	sp.Set("hit", strconv.FormatBool(ok))
	sp.End()
	if !ok {
		return Result{}, "", false
	}
	var res Result
	if err := json.Unmarshal(val, &res); err != nil {
		d.log.WarnContext(ctx, "shard cache decode failed", "owner", owner.ID, "key", key, "err", err)
		return Result{}, "", false
	}
	return res, owner.ID, true
}

// shardStore replicates a freshly computed cacheable result to the
// key's home peer, so the next submission of this net — to any fleet
// member — hits on one hop. Best effort: a down owner costs nothing but
// the local copy staying the only one.
func (d *Daemon) shardStore(ctx context.Context, netKey, key string, stored Result) {
	n := d.cfg.Cluster
	if n == nil {
		return
	}
	owner, ok := n.Owner(netKey)
	if !ok || n.IsSelf(owner.ID) {
		return
	}
	val, err := json.Marshal(stored)
	if err != nil {
		d.log.WarnContext(ctx, "shard cache encode failed", "key", key, "err", err)
		return
	}
	_, sp := d.cfg.Spans.Start(ctx, "cache/remote_put")
	sp.SetPeer(string(owner.ID))
	defer sp.End()
	if !n.CachePut(ctx, owner, key, val) {
		d.log.WarnContext(ctx, "shard cache put failed; local copy is the fallback",
			"owner", owner.ID, "key", key)
	}
}

// tryForward is the work-stealing path: a batch the local queue cannot
// admit (saturation, draining) is re-submitted whole to the least-loaded
// ready peer instead of bouncing to the client, as long as the hop cap
// allows. It reports whether the forward produced the response; on any
// failure the caller falls back to the original rejection, so stealing
// never makes an answer worse — only a 429/503 into a 200.
func (d *Daemon) tryForward(ctx context.Context, req *Request, pending []*task, results []Result, cause *SubmitError) (*Response, bool) {
	n := d.cfg.Cluster
	if n == nil || len(pending) == 0 {
		return nil, false
	}
	if cause.Code != ErrQueueFull && cause.Code != ErrShuttingDown {
		return nil, false
	}
	meta := forwardMetaFrom(ctx)
	if meta.Hops >= d.forwardHops() {
		return nil, false
	}
	var exclude []cluster.ID
	if meta.From != "" {
		exclude = append(exclude, meta.From)
	}
	peer, ok := n.LeastLoaded(exclude...)
	if !ok {
		return nil, false
	}
	// Only the jobs that actually need computing travel; local cache
	// hits in the same batch stay answered. Labels are pinned so the
	// peer's results and explain reports carry the client's names.
	sub := Request{Version: SchemaVersion, Jobs: make([]Job, len(pending)),
		Explain: req.Explain, Profile: req.Profile}
	for i, t := range pending {
		sub.Jobs[i] = *t.job
		if sub.Jobs[i].ID == "" {
			sub.Jobs[i].ID = t.label
		}
	}
	body, err := json.Marshal(&sub)
	if err != nil {
		return nil, false
	}
	// The hop span covers the remote round trip; its reference travels
	// with the forward so the peer's submit span links under it and the
	// stitched trace shows the hop from both sides.
	_, hop := d.cfg.Spans.Start(ctx, "forward")
	hop.SetPeer(string(peer.ID))
	out := cluster.ForwardMeta{Hops: meta.Hops + 1, From: n.Self().ID,
		TraceID: reqctx.TraceID(ctx), APIKey: apiKeyFrom(ctx), ParentSpan: hop.Ref()}
	respBody, status, ferr := n.Forward(ctx, peer, body, out)
	hop.End()
	if ferr != nil || status != http.StatusOK {
		d.log.WarnContext(ctx, "forward failed; falling back to rejection",
			"peer", peer.ID, "status", status, "err", ferr, "cause", cause.Code)
		return nil, false
	}
	var resp Response
	if err := json.Unmarshal(respBody, &resp); err != nil || len(resp.Results) != len(pending) {
		d.log.WarnContext(ctx, "forward response unusable; falling back to rejection",
			"peer", peer.ID, "err", err, "results", len(resp.Results), "want", len(pending))
		return nil, false
	}
	d.forwarded.Add(int64(len(pending)))
	for i, t := range pending {
		t.cancel()
		e := t.explain
		d.table.detach(e.JobID)
		e.State = JobDone
		e.Outcome = OutcomeForwarded
		e.ServedBy = string(peer.ID)
		d.table.record(e)
		if lw, ok := d.lat[OutcomeForwarded]; ok {
			lw.queue.Observe(0)
			lw.solve.Observe(0)
			lw.e2e.Observe(0)
		}
		results[t.idx] = resp.Results[i]
	}
	d.log.InfoContext(ctx, "batch forwarded", "peer", peer.ID, "jobs", len(pending),
		"hops", out.Hops, "cause", cause.Code)
	return &Response{Version: SchemaVersion, Results: results}, true
}
