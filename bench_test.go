// Benchmark harness: one benchmark per table and figure of Lillis & Cheng
// (TCAD'99, §VI), plus micro-benchmarks for the §III linear-time ARD
// claim, the Fig. 4 pruning scheme, and ablations of the design choices
// called out in DESIGN.md. Each table/figure benchmark prints its
// regenerated rows once (the same rows cmd/experiments prints), so
//
//	go test -bench=. -benchmem
//
// both times the pipeline and reproduces the paper's evaluation.
package msrnet_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/experiments"
	"msrnet/internal/geom"
	"msrnet/internal/netgen"
	"msrnet/internal/obs"
	"msrnet/internal/obs/trace"
	"msrnet/internal/ptree"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

var printOnce sync.Map

func printTable(key, content string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, content)
	}
}

// BenchmarkTable1Params regenerates Table I (technology parameters).
func BenchmarkTable1Params(b *testing.B) {
	tech := buslib.Default()
	var s string
	for i := 0; i < b.N; i++ {
		s = experiments.FormatTable1(tech)
	}
	printTable("Table I", s)
}

// benchNets holds pre-generated topologies so the benchmarks time the
// optimizer, not the router.
var benchNets = struct {
	once sync.Once
	t10  []*topo.Tree
	t20  []*topo.Tree
	tech buslib.Tech
}{}

func loadBenchNets(b *testing.B) {
	benchNets.once.Do(func() {
		benchNets.tech = buslib.Default()
		for seed := int64(1); seed <= 3; seed++ {
			tr10, err := netgen.Generate(seed, netgen.Defaults(10))
			if err != nil {
				b.Fatal(err)
			}
			benchNets.t10 = append(benchNets.t10, tr10)
			tr20, err := netgen.Generate(seed, netgen.Defaults(20))
			if err != nil {
				b.Fatal(err)
			}
			benchNets.t20 = append(benchNets.t20, tr20)
		}
	})
}

// BenchmarkOptimize measures the core dynamic program on the 10-pin
// benchmark net with the no-op recorder ("norec", the production default
// — instrumentation must cost nothing here), with a live registry
// ("obs"), and with a live ring tracer ("trace", budgeted at ≤5% over
// norec), so the overhead of full observability is itself observable.
func BenchmarkOptimize(b *testing.B) {
	loadBenchNets(b)
	rt := benchNets.t10[0].RootAt(benchNets.t10[0].Terminals()[0])
	b.Run("norec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(rt, benchNets.tech, core.Options{Repeaters: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("obs", func(b *testing.B) {
		reg := obs.New()
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(rt, benchNets.tech, core.Options{Repeaters: true, Obs: reg}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trace", func(b *testing.B) {
		tcr := trace.New(0)
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(rt, benchNets.tech, core.Options{Repeaters: true, Trace: tcr}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable2RepeaterInsertion times the repeater-insertion half of
// Table II (10-pin nets) and prints the regenerated Table II rows once.
func BenchmarkTable2RepeaterInsertion(b *testing.B) {
	loadBenchNets(b)
	rt := benchNets.t10[0].RootAt(benchNets.t10[0].Terminals()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(rt, benchNets.tech, core.Options{Repeaters: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable2(b)
}

// BenchmarkTable2DriverSizing times the driver-sizing half of Table II.
func BenchmarkTable2DriverSizing(b *testing.B) {
	loadBenchNets(b)
	rt := benchNets.t10[0].RootAt(benchNets.t10[0].Terminals()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(rt, benchNets.tech, core.Options{SizeDrivers: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable2(b)
}

var table2Rows []experiments.Table2Row

func printTable2(b *testing.B) {
	if _, loaded := printOnce.LoadOrStore("Table II+IV compute", true); !loaded {
		for _, pins := range []int{10, 20} {
			row, _, err := experiments.Table2(pins, 5, 1, buslib.Default())
			if err != nil {
				b.Fatal(err)
			}
			table2Rows = append(table2Rows, row)
		}
		printTable("Table II", experiments.FormatTable2(table2Rows))
		printTable("Table IV", experiments.FormatTable4(table2Rows))
	}
}

// BenchmarkTable3FastestSolutions regenerates Table III.
func BenchmarkTable3FastestSolutions(b *testing.B) {
	var rows []experiments.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table3(buslib.Default())
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("Table III", experiments.FormatTable3(rows))
}

// BenchmarkTable4Runtime10Pin and ...20Pin are the Table IV measurement
// itself: the per-net optimizer runtime at each size (the printed Table
// IV seconds come from the Table II pass).
func BenchmarkTable4Runtime10Pin(b *testing.B) { benchRuntime(b, 10) }

// BenchmarkTable4Runtime20Pin times 20-pin repeater insertion.
func BenchmarkTable4Runtime20Pin(b *testing.B) { benchRuntime(b, 20) }

func benchRuntime(b *testing.B, pins int) {
	loadBenchNets(b)
	nets := benchNets.t10
	if pins == 20 {
		nets = benchNets.t20
	}
	roots := make([]*topo.Rooted, len(nets))
	for i, tr := range nets {
		roots[i] = tr.RootAt(tr.Terminals()[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := roots[i%len(roots)]
		if _, err := core.Optimize(rt, benchNets.tech, core.Options{Repeaters: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11EightPinNet regenerates Fig. 11 (the 8-pin example with
// its 2- and 5-repeater solutions).
func BenchmarkFig11EightPinNet(b *testing.B) {
	var f *experiments.Fig11Result
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.Fig11(8, buslib.Default(), []int{2, 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("Fig. 11", experiments.FormatFig11(f))
}

// BenchmarkARDLinear and BenchmarkARDNaive back the §III claim: the
// linear-time ARD against the |sources| single-source propagations, on a
// large multisource net.
func BenchmarkARDLinear(b *testing.B) { benchARDScaling(b, true) }

// BenchmarkARDNaive is the O(s·n) baseline.
func BenchmarkARDNaive(b *testing.B) { benchARDScaling(b, false) }

func benchARDScaling(b *testing.B, linear bool) {
	tr, err := netgen.Generate(5, netgen.Defaults(60))
	if err != nil {
		b.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	n := rctree.NewNet(rt, buslib.Default(), rctree.Assignment{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if linear {
			ard.Compute(n, ard.Options{})
		} else {
			n.NaiveARD(false)
		}
	}
}

// BenchmarkMFSDivideConquer and BenchmarkMFSNaive compare the Fig. 4
// divide-and-conquer minimal-functional-subset scheme with quadratic
// pairwise pruning inside a full optimizer run.
func BenchmarkMFSDivideConquer(b *testing.B) { benchPruner(b, core.PruneDivide) }

// BenchmarkMFSNaive uses the quadratic pruner.
func BenchmarkMFSNaive(b *testing.B) { benchPruner(b, core.PruneNaive) }

func benchPruner(b *testing.B, p core.Pruner) {
	loadBenchNets(b)
	rt := benchNets.t20[0].RootAt(benchNets.t20[0].Terminals()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(rt, benchNets.tech, core.Options{Repeaters: true, Pruner: p}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoPruning quantifies what the MFS buys: the same DP
// with pruning disabled on a deliberately small net (anything larger
// explodes — which is the point).
func BenchmarkAblationNoPruning(b *testing.B) {
	tr := smallLineNet(b, 12)
	rt := tr.RootAt(tr.Terminals()[0])
	tech := buslib.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Pruner: core.PruneOff}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWithPruning is the same small net with the default
// pruner, for direct comparison with BenchmarkAblationNoPruning.
func BenchmarkAblationWithPruning(b *testing.B) {
	tr := smallLineNet(b, 12)
	rt := tr.RootAt(tr.Terminals()[0])
	tech := buslib.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(rt, tech, core.Options{Repeaters: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func smallLineNet(b *testing.B, ins int) *topo.Tree {
	tr := topo.New()
	a := tr.AddTerminal(geom.Pt(0, 0), buslib.DefaultTerminal("a"))
	c := tr.AddTerminal(geom.Pt(float64(ins+1)*700, 0), buslib.DefaultTerminal("b"))
	tr.AddEdge(a, c, float64(ins+1)*700)
	tr.PlaceInsertionPoints(700)
	if got := len(tr.Insertions()); got < ins {
		b.Fatalf("expected ≥%d insertion points, got %d", ins, got)
	}
	return tr
}

// BenchmarkAblationWireSizing measures the cost of enabling the
// wire-sizing extension (width options {1, 2}) relative to plain
// repeater insertion (BenchmarkTable2RepeaterInsertion).
func BenchmarkAblationWireSizing(b *testing.B) {
	// Wire sizing multiplies the solution space per wire; a long two-pin
	// line with 10 insertion points keeps the ablation tractable while
	// still exercising width choice on every segment.
	tr := smallLineNet(b, 10)
	rt := tr.RootAt(tr.Terminals()[0])
	opt := core.Options{Repeaters: true, WireWidths: []float64{1, 2}, WireCostPerUm: 1e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(rt, benchNets.tech, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInvertingRepeaters measures the polarity-tracking
// variant (§V extension) with an inverter library.
func BenchmarkAblationInvertingRepeaters(b *testing.B) {
	loadBenchNets(b)
	tech := benchNets.tech
	inv := tech.Repeaters[0]
	inv.Name = "inv"
	inv.Cost = 1
	inv.Inverting = true
	tech.Repeaters = append([]buslib.Repeater{}, tech.Repeaters...)
	tech.Repeaters = append(tech.Repeaters, inv)
	rt := benchNets.t10[0].RootAt(benchNets.t10[0].Terminals()[0])
	opt := core.Options{Repeaters: true, AllowInverting: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(rt, tech, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsymmetricRoles regenerates the §VII asymmetric-distribution
// study and prints it once.
func BenchmarkAsymmetricRoles(b *testing.B) {
	var rows []experiments.AsymRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Asymmetric(10, 3, 50, buslib.Default(), []float64{0.2, 0.5, 1.0})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("Asymmetric roles (§VII)", experiments.FormatAsym(rows))
}

// BenchmarkTopologySynthesis measures the §VII extension: multisource
// timing-driven topology synthesis (P-Tree interval DP + optimizer-scored
// candidate selection) on a 9-terminal net.
func BenchmarkTopologySynthesis(b *testing.B) {
	r := rand.New(rand.NewSource(21))
	pts := make([]geom.Point, 9)
	terms := make([]buslib.Terminal, 9)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*10000, r.Float64()*10000)
		terms[i] = buslib.DefaultTerminal(fmt.Sprintf("t%d", i))
	}
	tech := buslib.Default()
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := ptree.TimingDriven(pts, terms, tech, 800, ptree.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sol, err := res.Suite.MinARD()
		if err != nil {
			b.Fatal(err)
		}
		last = sol.ARD
	}
	printTable("Topology synthesis (§VII)",
		fmt.Sprintf("9-terminal net: best optimized ARD %.4f ns\n", last))
}

// BenchmarkSpacingStudy regenerates the footnote-15 spacing table.
func BenchmarkSpacingStudy(b *testing.B) {
	var rows []experiments.SpacingRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.SpacingStudy(10, 3, 1, buslib.Default(), []float64{800, 450})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("Spacing study (footnote 15)", experiments.FormatSpacing(rows))
}

// BenchmarkBaselineGreedy times the greedy insertion baseline on the
// 10-pin benchmark net and prints its optimality gap against the DP once.
func BenchmarkBaselineGreedy(b *testing.B) {
	loadBenchNets(b)
	rt := benchNets.t10[0].RootAt(benchNets.t10[0].Terminals()[0])
	opt := core.Options{Repeaters: true}
	b.ResetTimer()
	var greedy []core.CostARD
	for i := 0; i < b.N; i++ {
		greedy, _ = core.GreedyInsertion(rt, benchNets.tech, opt)
	}
	b.StopTimer()
	if _, loaded := printOnce.LoadOrStore("greedy-gap", true); !loaded {
		res, err := core.Optimize(rt, benchNets.tech, opt)
		if err != nil {
			b.Fatal(err)
		}
		gap := core.CompareGreedy(greedy, res.Suite)
		printTable("Greedy baseline vs optimal DP",
			fmt.Sprintf("greedy points %d, worst ARD gap %.4f ns, total gap %.4f ns\n",
				gap.GreedyPoints, gap.WorstARDGapNs, gap.TotalARDGapNs))
	}
}

// BenchmarkAblationRichRepeaterLibrary measures the DP with a three-size
// repeater library ({1X,2X,4X} pairs) against the single-type default —
// richer libraries give finer tradeoff curves at higher DP cost.
func BenchmarkAblationRichRepeaterLibrary(b *testing.B) {
	loadBenchNets(b)
	base := buslib.Buffer1X()
	tech := benchNets.tech
	tech.Repeaters = []buslib.Repeater{
		buslib.RepeaterFromPair(base),
		buslib.RepeaterFromPair(base.Scale(2)),
		buslib.RepeaterFromPair(base.Scale(4)),
	}
	rt := benchNets.t10[0].RootAt(benchNets.t10[0].Terminals()[0])
	b.ResetTimer()
	var pts int
	for i := 0; i < b.N; i++ {
		res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
		if err != nil {
			b.Fatal(err)
		}
		pts = len(res.Suite)
	}
	b.StopTimer()
	printTable("Rich repeater library ablation",
		fmt.Sprintf("3-size library: %d Pareto points (single-size default: compare BenchmarkTable2RepeaterInsertion)\n", pts))
}

// BenchmarkParallelOptimize measures the parallel-subtree mode. Gains
// depend on topology shape: sibling subtrees run concurrently, so wide
// shallow stars benefit while deep chains (where the expensive joins sit
// near the root) see mostly synchronization overhead — compare the
// Star/Chain variants.
func BenchmarkParallelOptimize(b *testing.B) {
	b.Run("star-serial", func(b *testing.B) { benchStar(b, false) })
	b.Run("star-parallel", func(b *testing.B) { benchStar(b, true) })
	b.Run("rand20-serial", func(b *testing.B) { benchRand20(b, false) })
	b.Run("rand20-parallel", func(b *testing.B) { benchRand20(b, true) })
}

func benchRand20(b *testing.B, parallel bool) {
	loadBenchNets(b)
	rt := benchNets.t20[0].RootAt(benchNets.t20[0].Terminals()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(rt, benchNets.tech, core.Options{Repeaters: true, Parallel: parallel}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchStar(b *testing.B, parallel bool) {
	// Eight 6 mm arms from a central hub: wide and shallow.
	tr := topo.New()
	hub := tr.AddSteiner(geom.Pt(0, 0))
	root := tr.AddTerminal(geom.Pt(0, 100), buslib.DefaultTerminal("root"))
	tr.AddEdge(hub, root, 100)
	for i := 0; i < 8; i++ {
		id := tr.AddTerminal(geom.Pt(6000, float64(i)*100), buslib.DefaultTerminal(fmt.Sprintf("t%d", i)))
		tr.AddEdge(hub, id, 6000)
	}
	tr.PlaceInsertionPoints(800)
	rt := tr.RootAt(root)
	tech := buslib.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Parallel: parallel}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCombinedMode regenerates the joint sizing+repeater study.
func BenchmarkCombinedMode(b *testing.B) {
	var row experiments.CombinedRow
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.Combined(10, 3, 1, buslib.Default())
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("Combined sizing+repeaters",
		experiments.FormatCombined([]experiments.CombinedRow{row}))
}
